//! Dispersion and trend helpers for metric series.
//!
//! The bench-trajectory analytics track each guardrail metric across
//! PRs; deciding whether the latest point moved needs a noise estimate
//! of the series so far. These are plain population statistics —
//! guardrail series are the whole population (every checked-in bench
//! report), not a sample.

/// Population standard deviation; 0.0 for fewer than two values.
pub fn stddev(values: &[f64]) -> f64 {
    if values.len() < 2 {
        return 0.0;
    }
    let mean = crate::amean(values);
    let var = values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / values.len() as f64;
    var.sqrt()
}

/// Coefficient of variation in percent (`stddev / |mean| * 100`);
/// 0.0 when the mean is zero or there are fewer than two values.
pub fn cv_percent(values: &[f64]) -> f64 {
    let mean = crate::amean(values);
    if mean == 0.0 || values.len() < 2 {
        return 0.0;
    }
    stddev(values) / mean.abs() * 100.0
}

/// Relative change from `from` to `to` in percent; 0.0 when `from` is
/// zero (no meaningful relative change exists).
pub fn change_percent(from: f64, to: f64) -> f64 {
    if from == 0.0 {
        0.0
    } else {
        (to - from) / from * 100.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stddev_population() {
        assert_eq!(stddev(&[]), 0.0);
        assert_eq!(stddev(&[5.0]), 0.0);
        // Population stddev of {2, 4, 4, 4, 5, 5, 7, 9} is exactly 2.
        let v = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((stddev(&v) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn cv_is_relative() {
        let v = [90.0, 100.0, 110.0];
        let cv = cv_percent(&v);
        assert!(cv > 7.0 && cv < 9.0, "{cv}");
        assert_eq!(cv_percent(&[0.0, 0.0]), 0.0);
    }

    #[test]
    fn change_signed() {
        assert!((change_percent(100.0, 110.0) - 10.0).abs() < 1e-12);
        assert!((change_percent(100.0, 90.0) + 10.0).abs() < 1e-12);
        assert_eq!(change_percent(0.0, 5.0), 0.0);
    }
}

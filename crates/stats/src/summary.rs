//! Means and series normalization for the experiment reports.

/// Arithmetic mean; 0.0 for an empty slice.
pub fn amean(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

/// Geometric mean; 0.0 for an empty slice.
///
/// # Panics
///
/// Panics if any value is negative.
pub fn geomean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    assert!(
        values.iter().all(|&v| v >= 0.0),
        "geometric mean requires non-negative values"
    );
    let log_sum: f64 = values.iter().map(|&v| v.ln()).sum();
    (log_sum / values.len() as f64).exp()
}

/// Divides each element of `values` by the matching element of `baseline`
/// (the paper's *normalized IPC*, Figure 6 right column).
///
/// # Panics
///
/// Panics if lengths differ or a baseline value is zero.
pub fn normalize(values: &[f64], baseline: &[f64]) -> Vec<f64> {
    assert_eq!(values.len(), baseline.len(), "length mismatch");
    values
        .iter()
        .zip(baseline)
        .map(|(&v, &b)| {
            assert!(b != 0.0, "zero baseline");
            v / b
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn amean_basic() {
        assert_eq!(amean(&[1.0, 2.0, 3.0]), 2.0);
        assert_eq!(amean(&[]), 0.0);
    }

    #[test]
    fn geomean_basic() {
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert_eq!(geomean(&[]), 0.0);
        assert!((geomean(&[2.0, 2.0, 2.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn geomean_rejects_negative() {
        let _ = geomean(&[-1.0]);
    }

    #[test]
    fn normalize_basic() {
        let n = normalize(&[2.0, 3.0], &[1.0, 2.0]);
        assert_eq!(n, vec![2.0, 1.5]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn normalize_length_checked() {
        let _ = normalize(&[1.0], &[1.0, 2.0]);
    }
}

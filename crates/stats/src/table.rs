//! Plain-text / markdown / CSV table rendering for experiment output.

use std::fmt;

/// A simple column-aligned table.
///
/// # Example
///
/// ```
/// use arvi_stats::Table;
/// let mut t = Table::new(vec!["bench".into(), "IPC".into()]);
/// t.row(vec!["gcc".into(), "1.23".into()]);
/// let text = t.to_text();
/// assert!(text.contains("gcc"));
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(headers: Vec<String>) -> Table {
        Table {
            headers,
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width {} != header width {}",
            cells.len(),
            self.headers.len()
        );
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    fn widths(&self) -> Vec<usize> {
        let mut w: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                w[i] = w[i].max(c.len());
            }
        }
        w
    }

    /// Renders as aligned plain text.
    pub fn to_text(&self) -> String {
        use fmt::Write;
        let w = self.widths();
        let mut out = String::new();
        let line = |cells: &[String], out: &mut String| {
            for (i, c) in cells.iter().enumerate() {
                let _ = write!(out, "{:width$}  ", c, width = w[i]);
            }
            out.truncate(out.trim_end().len());
            out.push('\n');
        };
        line(&self.headers, &mut out);
        let total: usize = w.iter().sum::<usize>() + 2 * (w.len() - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            line(row, &mut out);
        }
        out
    }

    /// Renders as GitHub-flavoured markdown.
    pub fn to_markdown(&self) -> String {
        use fmt::Write;
        let mut out = String::new();
        let _ = writeln!(out, "| {} |", self.headers.join(" | "));
        let _ = writeln!(
            out,
            "|{}|",
            self.headers
                .iter()
                .map(|_| "---")
                .collect::<Vec<_>>()
                .join("|")
        );
        for row in &self.rows {
            let _ = writeln!(out, "| {} |", row.join(" | "));
        }
        out
    }

    /// Renders as CSV (no quoting; cells must not contain commas).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.headers.join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_text())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new(vec!["name".into(), "value".into()]);
        t.row(vec!["alpha".into(), "1".into()]);
        t.row(vec!["b".into(), "22".into()]);
        t
    }

    #[test]
    fn text_alignment() {
        let text = sample().to_text();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[2].starts_with("alpha"));
    }

    #[test]
    fn markdown_shape() {
        let md = sample().to_markdown();
        assert!(md.starts_with("| name | value |"));
        assert!(md.contains("|---|---|"));
        assert!(md.contains("| alpha | 1 |"));
    }

    #[test]
    fn csv_shape() {
        let csv = sample().to_csv();
        assert_eq!(csv, "name,value\nalpha,1\nb,22\n");
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn width_mismatch_panics() {
        let mut t = Table::new(vec!["a".into()]);
        t.row(vec!["1".into(), "2".into()]);
    }

    #[test]
    fn len_and_empty() {
        let t = Table::new(vec!["a".into()]);
        assert!(t.is_empty());
        assert_eq!(sample().len(), 2);
    }
}

//! # arvi-synth
//!
//! A seeded synthetic-workload subsystem: composable, deterministic
//! generators of committed [`DynInst`](arvi_isa::DynInst) streams with
//! explicit control knobs for the things the ARVI study cares about —
//! dependence-graph topology (chain depth, fan-out, dead/live register
//! pressure, production-to-branch distance), branch-behavior class
//! (fixed-bias, periodic, history-correlated, data-dependent) and
//! memory access pattern (streaming, strided, pointer-chasing through
//! the emulated heap).
//!
//! A scenario is a one-line plain-text spec (no serialization library;
//! see [`spec`]):
//!
//! ```text
//! datadep-deep branch=datadep:64 chain=8 fanout=2 dead=2 gap=20 mem=stride:16
//! ```
//!
//! Scenarios plug in at every layer of the stack:
//!
//! * [`SynthSource`] implements `arvi_sim::InstSource` — a scenario can
//!   drive the timing simulator live, exactly like the emulator.
//! * [`record_trace`] writes the stream through `arvi_trace`, so
//!   scenarios participate in record-once / replay-many sweeps and
//!   `--trace-dir` persistence.
//! * The [curated scenario set](curated) registers next to the
//!   `arvi_workloads::Benchmark` suite: the experiment binaries accept
//!   `--scenario NAME` / `--scenario-file FILE` wherever a benchmark
//!   grid runs today, and `ScenarioSpec` implements
//!   [`arvi_workloads::WorkloadSource`].
//!
//! ```
//! use arvi_synth::{ScenarioSpec, SynthSource};
//! use arvi_sim::{simulate_source, intern_name, SimParams, Depth, PredictorConfig};
//!
//! let spec: ScenarioSpec = "quick branch=datadep:16 chain=2 gap=12".parse().unwrap();
//! let r = simulate_source(
//!     intern_name(&spec.name),
//!     SynthSource::new(&spec, 42),
//!     SimParams::small_test(),
//!     PredictorConfig::ArviCurrent,
//!     2_000,
//!     8_000,
//! );
//! assert!(r.accuracy() > 0.5);
//! ```

pub mod program;
pub mod source;
pub mod spec;
pub mod suite;

pub use program::build_program;
pub use source::{record_trace, SynthSource};
pub use spec::{parse_scenarios, BranchClass, MemPattern, ScenarioSpec, SpecError};
pub use suite::{curated, find, CURATED};

use arvi_isa::Program;
use arvi_workloads::WorkloadSource;

impl WorkloadSource for ScenarioSpec {
    fn name(&self) -> &str {
        &self.name
    }

    fn program(&self, seed: u64) -> Program {
        build_program(self, seed)
    }
}

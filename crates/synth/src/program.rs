//! Scenario-spec → `Program` compilation.
//!
//! Every scenario compiles to the same iteration skeleton; the knobs
//! decide what each section emits:
//!
//! ```text
//! outer:
//!   acquire    value V (per mem pattern) and, if needed, an aux bit
//!   chain      W = f(V): `chain` dependent ALU links, each feeding
//!              `fanout - 1` extra live consumers
//!   dead       `dead` results written to registers never read again
//!   branches   the scenario's branch-class section (tests the
//!              *previous* iteration's W for datadep, so the value has
//!              written back by prediction time — the li-model idiom)
//!   handoff    A1 = W  (production point for next iteration's branches)
//!   gap        `gap` filler instructions: production-to-branch distance
//!   jump outer
//! ```
//!
//! All randomness (ring contents, chain constants, pointer-chase
//! permutation) is drawn from a generator seeded by `(spec, seed)`, so a
//! scenario's committed stream is a pure function of its spec line and
//! seed — the determinism the trace subsystem and the property tests
//! rely on.

use arvi_isa::{regs::*, AluOp, Cond, Program, ProgramBuilder};
use arvi_workloads::data;
use arvi_workloads::Layout;
use rand::rngs::SmallRng;
use rand::Rng;

use crate::spec::{BranchClass, MemPattern, ScenarioSpec};

/// Value-ring length (words) for the streaming/strided patterns. A lap
/// is 65536 iterations — more than any experiment window simulates — so
/// within a measurement window the value sequence never repeats and a
/// history predictor has no lap to memorize, while the *population*
/// behind the values (datadep) recurs every few iterations.
const VALUE_RING: usize = 65536;

/// Aux-bit ring length (words). The fixed-bias and history classes draw
/// their coin flips here; like [`VALUE_RING`], one lap outlasts the
/// window, so the flip sequence is irreducible within a run.
const AUX_RING: usize = 65536;

/// Generated values live in `[1, 2^48)`: never zero (zero is the chase
/// NULL convention elsewhere in the suite) and with slack below 2^63 so
/// chained adds cannot wrap into apparent negatives.
const VALUE_BITS: u64 = 48;

fn shuffle(rng: &mut SmallRng, v: &mut [u64]) {
    for i in (1..v.len()).rev() {
        let j = rng.gen_range(0..i + 1);
        v.swap(i, j);
    }
}

/// Draws ring contents: `len` values from a recurring `population`-sized
/// pool (datadep), or fully independent values (other classes).
fn ring_values(rng: &mut SmallRng, len: usize, population: Option<u32>) -> Vec<u64> {
    match population {
        Some(pop) => {
            let pool = data::distinct_values(rng, pop as usize, 1, 1 << VALUE_BITS);
            (0..len)
                .map(|_| pool[rng.gen_range(0..pool.len())])
                .collect()
        }
        None => (0..len)
            .map(|_| rng.gen_range(1..1 << VALUE_BITS))
            .collect(),
    }
}

/// Builds the scenario's program. Deterministic in `(spec, seed)`.
pub fn build_program(spec: &ScenarioSpec, seed: u64) -> Program {
    let mut rng = data::rng(seed ^ spec.fingerprint());
    let mut b = ProgramBuilder::new();
    let mut l = Layout::new();

    let population = match spec.branch {
        BranchClass::DataDep { population } => Some(population),
        _ => None,
    };

    // -- Data segment -------------------------------------------------
    // Value source: a ring for stream/stride, a node cycle for chase.
    let (ring_addr, ring_mask, step, chase) = match spec.mem {
        MemPattern::Streaming | MemPattern::Strided { .. } => {
            let addr = l.alloc(VALUE_RING);
            for (i, v) in ring_values(&mut rng, VALUE_RING, population)
                .into_iter()
                .enumerate()
            {
                b.data(addr + (i as u64) * 8, v);
            }
            // Strides are forced odd: an odd step is coprime with the
            // power-of-two ring, so the cursor's orbit covers every slot
            // instead of collapsing onto a short (and thus memorizable)
            // sub-ring of gcd(stride, len) period.
            let step = match spec.mem {
                MemPattern::Strided { stride } => (stride as usize | 1) & (VALUE_RING - 1),
                _ => 1,
            };
            (addr, (VALUE_RING - 1) as i64, step as i64, None)
        }
        MemPattern::PointerChase { nodes } => {
            let n = nodes as usize;
            let addr = l.alloc(n * 2);
            let values = ring_values(&mut rng, n, population);
            // A single random cycle through all nodes: node[i] is 16 B.
            let mut order: Vec<u64> = (0..n as u64).collect();
            shuffle(&mut rng, &mut order);
            for (k, &i) in order.iter().enumerate() {
                let next = order[(k + 1) % n];
                b.data(addr + i * 16, values[i as usize]);
                b.data(addr + i * 16 + 8, addr + next * 16);
            }
            (addr, 0, 0, Some(order[0]))
        }
    };

    // Aux-bit ring: coin flips for the bias and history classes.
    let needs_aux = matches!(
        spec.branch,
        BranchClass::FixedBias { taken_pct: 1..=99 } | BranchClass::HistoryCorrelated { .. }
    );
    let aux_addr = if needs_aux {
        let addr = l.alloc(AUX_RING);
        let mut bits: Vec<u64> = match spec.branch {
            // Exactly pct% ones, shuffled: the empirical taken rate
            // matches the spec to ring-rounding precision.
            BranchClass::FixedBias { taken_pct } => {
                let ones = (AUX_RING * taken_pct as usize) / 100;
                let mut v = vec![0u64; AUX_RING];
                v[..ones].fill(1);
                v
            }
            _ => (0..AUX_RING).map(|_| rng.gen_range(0..2u64)).collect(),
        };
        shuffle(&mut rng, &mut bits);
        for (i, bit) in bits.into_iter().enumerate() {
            b.data(addr + (i as u64) * 8, bit);
        }
        Some(addr)
    } else {
        None
    };

    let cursor_slot = l.alloc(1);
    let aux_cursor_slot = l.alloc(1);
    let ptr_slot = l.alloc(1);
    let stats_slot = l.alloc(1);
    if let Some(first) = chase {
        b.data(ptr_slot, ring_addr + first * 16);
    }

    // Chain constants (fixed per program, random per seed).
    let chain_consts: Vec<i64> = (0..spec.chain_depth.max(1))
        .map(|_| rng.gen_range(1i64..1 << 20) | 1)
        .collect();

    // -- Code ---------------------------------------------------------
    // S0 ring base, S2 aux base, S4 = W, S5 accumulator, S6 iteration
    // counter, S7 stats; A0 = V, A1 = previous W, A2 = history shift
    // register, A3 = aux bit; T8 filler counter; T9-T11/V2-V3 dead
    // targets; V0/V1 fanout accumulators.
    b.li(S0, ring_addr as i64);
    if let Some(aux) = aux_addr {
        b.li(S2, aux as i64);
    }
    b.li(S7, stats_slot as i64);
    b.li(A1, 0);
    b.li(A2, 0);
    b.li(S6, 0);

    let outer = b.here();

    // Acquire V -> A0.
    match spec.mem {
        MemPattern::Streaming | MemPattern::Strided { .. } => {
            b.li(T0, cursor_slot as i64);
            b.load(T1, T0, 0);
            b.alu_imm(AluOp::Sll, T2, T1, 3);
            b.alu(AluOp::Add, T2, S0, T2);
            b.load(A0, T2, 0);
            b.alu_imm(AluOp::Add, T1, T1, step);
            b.alu_imm(AluOp::And, T1, T1, ring_mask);
            b.store(T1, T0, 0);
        }
        MemPattern::PointerChase { .. } => {
            b.li(T0, ptr_slot as i64);
            b.load(T1, T0, 0); // node address
            b.load(A0, T1, 0); // value
            b.load(T2, T1, 8); // next
            b.store(T2, T0, 0);
        }
    }
    // Acquire the aux bit -> A3 (its own streaming cursor).
    if aux_addr.is_some() {
        b.li(T3, aux_cursor_slot as i64);
        b.load(T4, T3, 0);
        b.alu_imm(AluOp::Sll, T5, T4, 3);
        b.alu(AluOp::Add, T5, S2, T5);
        b.load(A3, T5, 0);
        b.alu_imm(AluOp::Add, T4, T4, 1);
        b.alu_imm(AluOp::And, T4, T4, (AUX_RING - 1) as i64);
        b.store(T4, T3, 0);
    }

    // Dependence chain W = f(V), with fan-out consumers per link.
    let fan_acc = [V0, V1];
    b.mv(S4, A0);
    for k in 0..spec.chain_depth as usize {
        match k % 3 {
            0 => {
                b.alu_imm(AluOp::Xor, S4, S4, chain_consts[k]);
            }
            1 => {
                b.alu_imm(AluOp::Add, S4, S4, chain_consts[k]);
            }
            // Re-converge on V so the chain widens back into the load.
            // The copy is shifted by a per-link-distinct amount: adding V
            // itself would XOR-cancel V's parity out of bit 0 whenever V
            // feeds the sum an even number of times, collapsing the
            // "data-dependent" branch below to a constant.
            _ => {
                b.alu_imm(AluOp::Srl, S3, A0, (k as i64 % 13) + 1);
                b.alu(AluOp::Add, S4, S4, S3);
            }
        };
        for f in 0..(spec.fanout as usize - 1) {
            let acc = fan_acc[f % fan_acc.len()];
            b.alu(AluOp::Add, acc, acc, S4);
        }
    }

    // Dead register pressure: destinations never read again.
    let dead_regs = [T9, T10, T11, V2, V3];
    for j in 0..spec.dead_writes as usize {
        b.alu_imm(
            AluOp::Add,
            dead_regs[j % dead_regs.len()],
            T8,
            (j as i64 + 1) * 3,
        );
    }

    // Branch section.
    b.alu_imm(AluOp::Add, S6, S6, 1);
    match spec.branch {
        BranchClass::FixedBias { taken_pct } => {
            let skip = b.label();
            match taken_pct {
                100 => {
                    b.branch_to_label(Cond::Geu, ZERO, ZERO, skip);
                }
                0 => {
                    b.branch_to_label(Cond::Ltu, ZERO, ZERO, skip);
                }
                // Taken iff this iteration's coin flip is 1. The bit is
                // loaded a handful of instructions earlier, far inside
                // the frontend window: no value is available in time,
                // and the sequence defeats history — irreducible bias.
                _ => {
                    b.branch_to_label(Cond::Ne, A3, ZERO, skip);
                }
            }
            b.alu_imm(AluOp::Add, S5, S5, 1);
            b.bind(skip);
        }
        BranchClass::Periodic { period } => {
            // Taken exactly every `period`-th iteration.
            if period.is_power_of_two() {
                b.alu_imm(AluOp::And, T6, S6, period as i64 - 1);
            } else {
                b.alu_imm(AluOp::Rem, T6, S6, period as i64);
            }
            let skip = b.label();
            b.branch_to_label(Cond::Eq, T6, ZERO, skip);
            b.alu_imm(AluOp::Add, S5, S5, 1);
            b.bind(skip);
        }
        BranchClass::HistoryCorrelated { lag } => {
            // Shift this iteration's coin flip into the history register.
            b.alu_imm(AluOp::Sll, A2, A2, 1);
            b.alu(AluOp::Or, A2, A2, A3);
            // Branch X: the fresh flip — predictable by nobody.
            let x = b.label();
            b.branch_to_label(Cond::Ne, A3, ZERO, x);
            b.alu_imm(AluOp::Add, S5, S5, 1);
            b.bind(x);
            // Branch Y: the same flip, `lag` iterations later — exactly
            // X's outcome `lag` back in global history.
            b.alu_imm(AluOp::Srl, T6, A2, lag as i64);
            b.alu_imm(AluOp::And, T6, T6, 1);
            let y = b.label();
            b.branch_to_label(Cond::Ne, T6, ZERO, y);
            b.alu_imm(AluOp::Xor, S5, S5, 5);
            b.bind(y);
        }
        BranchClass::DataDep { .. } => {
            // Both branches are pure functions of A1 — the previous
            // iteration's chained value, produced a full iteration (and
            // the `gap` filler) earlier, so it has written back by
            // prediction time. The value sequence is a seeded-random
            // replay of a small recurring population: ambiguous to
            // history, exact for a value-indexed predictor.
            b.alu_imm(AluOp::And, T6, A1, 1);
            let d1 = b.label();
            b.branch_to_label(Cond::Ne, T6, ZERO, d1);
            b.alu_imm(AluOp::Add, S5, S5, 3);
            b.bind(d1);
            b.alu_imm(AluOp::Srl, T7, A1, 7);
            b.alu_imm(AluOp::And, T7, T7, 1);
            let d2 = b.label();
            b.branch_to_label(Cond::Ne, T7, ZERO, d2);
            b.alu_imm(AluOp::Xor, S5, S5, 7);
            b.bind(d2);
        }
    }

    // Handoff: next iteration's branches consume this W.
    b.mv(A1, S4);

    // Gap filler: independent work separating production from the next
    // iteration's branch section.
    for k in 0..spec.load_branch_gap as usize {
        if k % 2 == 0 {
            b.alu_imm(AluOp::Add, T8, T8, 1);
        } else {
            b.alu_imm(AluOp::Xor, T8, T8, 0x55);
        }
    }

    b.store(S5, S7, 0);
    b.jump(outer);

    b.build().with_name(spec.name.as_str())
}

#[cfg(test)]
mod tests {
    use super::*;
    use arvi_isa::Emulator;

    fn spec(line: &str) -> ScenarioSpec {
        line.parse().expect("valid spec")
    }

    fn branch_outcomes(spec: &ScenarioSpec, seed: u64, n: usize) -> Vec<(u64, bool)> {
        Emulator::new(build_program(spec, seed))
            .take(n)
            .filter(|d| d.is_branch())
            .map(|d| (d.byte_pc(), d.branch.expect("is_branch").taken))
            .collect()
    }

    #[test]
    fn every_class_builds_and_runs_forever() {
        for line in [
            "a branch=bias:100",
            "b branch=bias:35 mem=stride:8",
            "c branch=periodic:6",
            "d branch=history:3 chain=4",
            "e branch=datadep:16 chain=8 fanout=3 dead=4 mem=chase:64",
        ] {
            let s = spec(line);
            let t: Vec<_> = Emulator::new(build_program(&s, 7)).take(20_000).collect();
            assert_eq!(t.len(), 20_000, "{line} halted early");
            let branches = t.iter().filter(|d| d.is_branch()).count();
            assert!(branches > 300, "{line}: too few branches ({branches})");
        }
    }

    #[test]
    fn deterministic_per_seed_and_spec() {
        let s = spec("det branch=datadep:32 chain=4 mem=chase:128");
        let a: Vec<_> = Emulator::new(build_program(&s, 3)).take(10_000).collect();
        let b: Vec<_> = Emulator::new(build_program(&s, 3)).take(10_000).collect();
        assert_eq!(a, b);
        let c: Vec<_> = Emulator::new(build_program(&s, 4)).take(10_000).collect();
        assert_ne!(a, c, "different seeds must give different streams");
    }

    #[test]
    fn bias_rate_matches_spec() {
        for (pct, lo, hi) in [(100u8, 1.0, 1.0), (0, 0.0, 0.0), (80, 0.75, 0.85)] {
            let s = spec(&format!("r branch=bias:{pct}"));
            let outs = branch_outcomes(&s, 11, 120_000);
            let rate = outs.iter().filter(|(_, t)| *t).count() as f64 / outs.len() as f64;
            assert!((lo..=hi).contains(&rate), "bias:{pct} taken rate {rate:.3}");
        }
    }

    #[test]
    fn periodic_is_periodic() {
        let s = spec("p branch=periodic:5");
        let outs = branch_outcomes(&s, 1, 60_000);
        // Exactly one taken per five iterations, in lockstep.
        let taken: Vec<bool> = outs.iter().map(|&(_, t)| t).collect();
        let first = taken.iter().position(|&t| t).expect("some taken");
        for (i, &t) in taken.iter().enumerate() {
            assert_eq!(t, (i % 5) == (first % 5), "iteration {i}");
        }
    }

    #[test]
    fn history_branch_correlates_at_lag() {
        let s = spec("h branch=history:3");
        let outs = branch_outcomes(&s, 5, 120_000);
        // Outcomes alternate X, Y per iteration: y[i] == x[i - 3].
        let xs: Vec<bool> = outs.iter().step_by(2).map(|&(_, t)| t).collect();
        let ys: Vec<bool> = outs.iter().skip(1).step_by(2).map(|&(_, t)| t).collect();
        let n = ys.len();
        let matches = (3..n).filter(|&i| ys[i] == xs[i - 3]).count();
        assert!(
            matches as f64 / (n - 3) as f64 > 0.999,
            "lag-3 correlation broken ({matches}/{})",
            n - 3
        );
        // And X itself is a fair coin.
        let xr = xs.iter().filter(|&&t| t).count() as f64 / xs.len() as f64;
        assert!((0.45..0.55).contains(&xr), "X taken rate {xr}");
    }

    #[test]
    fn datadep_outcome_is_a_pure_function_of_the_value() {
        let s = spec("dd branch=datadep:32 chain=6");
        let t: Vec<_> = Emulator::new(build_program(&s, 9)).take(150_000).collect();
        // Map each parity-branch outcome to the A1 operand value it
        // tested (srcs[0] is the And-result; reconstruct from result of
        // the preceding And with mask 1 producing T6).
        use std::collections::HashMap;
        let mut per_value: HashMap<u64, std::collections::HashSet<bool>> = HashMap::new();
        let mut last_and_result = 0u64;
        let mut volatile_total = 0u64;
        let mut volatile_taken = 0u64;
        for d in &t {
            if d.dest == Some(T6) {
                last_and_result = d.result;
            }
            if d.is_branch() && d.srcs == [Some(T6), None] {
                let taken = d.branch.expect("branch").taken;
                per_value.entry(last_and_result).or_default().insert(taken);
                volatile_total += 1;
                volatile_taken += taken as u64;
            }
        }
        for (v, outcomes) in &per_value {
            assert_eq!(outcomes.len(), 1, "value {v} produced both outcomes");
        }
        // ...and the sequence itself is volatile (not trivially biased).
        let rate = volatile_taken as f64 / volatile_total as f64;
        assert!((0.2..0.8).contains(&rate), "parity taken rate {rate}");
    }

    #[test]
    fn chase_pattern_chases_pointers() {
        let s = spec("pc branch=bias:100 mem=chase:64");
        let t: Vec<_> = Emulator::new(build_program(&s, 2)).take(30_000).collect();
        // The value load's address comes from the preceding pointer load:
        // successive node addresses must wander (not stride).
        let addrs: Vec<u64> = t
            .iter()
            .filter(|d| d.is_load() && d.dest == Some(A0))
            .map(|d| d.mem_addr)
            .collect();
        assert!(addrs.len() > 400);
        let distinct: std::collections::HashSet<u64> = addrs.iter().copied().collect();
        assert_eq!(distinct.len(), 64, "cycle must visit every node");
        // Period is exactly the node count.
        assert_eq!(addrs[0], addrs[64]);
        assert_ne!(addrs[0], addrs[1]);
    }

    #[test]
    fn dead_and_fanout_knobs_change_the_mix() {
        let lean = spec("lean branch=datadep:16 chain=2 fanout=1 dead=0 gap=4");
        let fat = spec("fat branch=datadep:16 chain=2 fanout=4 dead=8 gap=4");
        let lean_len = Emulator::new(build_program(&lean, 1))
            .take(10_000)
            .filter(|d| d.kind == arvi_isa::InstKind::IntAlu)
            .count();
        let fat_len = Emulator::new(build_program(&fat, 1))
            .take(10_000)
            .filter(|d| d.kind == arvi_isa::InstKind::IntAlu)
            .count();
        let (lean_frac, fat_frac) = (lean_len as f64 / 10_000.0, fat_len as f64 / 10_000.0);
        assert!(
            fat_frac > lean_frac + 0.05,
            "fanout/dead knobs had no effect (ALU fraction {lean_frac:.3} vs {fat_frac:.3})"
        );
    }
}

//! Scenario streams as simulator frontends and recorded traces.

use arvi_isa::{DynInst, Emulator};
use arvi_sim::InstSource;
use arvi_trace::Trace;

use crate::spec::ScenarioSpec;

/// A live committed-instruction stream for a scenario: the generated
/// program running on the functional emulator.
///
/// Implements [`InstSource`], so a scenario can feed
/// [`arvi_sim::simulate_source`] directly, and `Iterator`, so it can
/// feed [`arvi_trace::TraceWriter`] / analysis code. The stream is
/// infinite (scenario programs never halt) and deterministic in
/// `(spec, seed)`.
#[derive(Debug)]
pub struct SynthSource {
    emu: Emulator,
}

impl SynthSource {
    /// Creates the stream for `spec` with workload input `seed`.
    pub fn new(spec: &ScenarioSpec, seed: u64) -> SynthSource {
        SynthSource {
            emu: Emulator::new(crate::program::build_program(spec, seed)),
        }
    }

    /// Instructions generated so far.
    pub fn generated(&self) -> u64 {
        self.emu.retired()
    }
}

impl InstSource for SynthSource {
    #[inline]
    fn next_inst(&mut self) -> Option<DynInst> {
        self.emu.step()
    }
}

impl Iterator for SynthSource {
    type Item = DynInst;

    #[inline]
    fn next(&mut self) -> Option<DynInst> {
        self.emu.step()
    }
}

/// Records `n` committed instructions of the scenario into an in-memory
/// [`Trace`] (named after the scenario, seeded with `seed`) — the
/// record-once half of record-once/replay-many for synthetic workloads.
pub fn record_trace(spec: &ScenarioSpec, seed: u64, n: u64) -> Trace {
    Trace::record(SynthSource::new(spec, seed), n, spec.name.as_str(), seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use arvi_trace::TraceReplayer;
    use std::sync::Arc;

    fn spec() -> ScenarioSpec {
        "src-test branch=datadep:16 chain=3 mem=stride:8"
            .parse()
            .expect("valid spec")
    }

    #[test]
    fn source_streams_and_counts() {
        let mut s = SynthSource::new(&spec(), 42);
        for _ in 0..1_000 {
            assert!(s.next_inst().is_some());
        }
        assert_eq!(s.generated(), 1_000);
    }

    #[test]
    fn recorded_trace_replays_the_live_stream_bit_identically() {
        let n = 12_000;
        let trace = Arc::new(record_trace(&spec(), 42, n));
        assert_eq!(trace.len(), n);
        assert_eq!(trace.name(), "src-test");
        let live: Vec<_> = SynthSource::new(&spec(), 42).take(n as usize).collect();
        let replayed: Vec<_> = TraceReplayer::new(trace).collect();
        assert_eq!(live, replayed);
    }
}

//! Scenario specifications: the plain-text language of `arvi-synth`.
//!
//! A scenario is a single line of whitespace-separated tokens — a name
//! followed by `key=value` knobs — so scenario suites can live in text
//! files, CLI flags and test literals without a serialization library:
//!
//! ```text
//! datadep-deep branch=datadep:64 chain=8 fanout=2 dead=2 gap=16 mem=stride:16
//! ```
//!
//! Every knob has a default, parsing is order-insensitive, and
//! [`ScenarioSpec`]'s `Display` renders the canonical full form, so
//! `parse(render(spec)) == spec` always holds (asserted by the
//! round-trip tests).

use std::fmt;
use std::str::FromStr;

/// The branch-behavior class a scenario stresses — the taxonomy every
/// predictor study must cover (biased, periodic, history-correlated,
/// data-dependent).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BranchClass {
    /// `bias:PCT` — taken with a fixed probability of `PCT` percent,
    /// decided by a bit loaded immediately before the branch (so no
    /// predictor, ARVI included, can beat the bias). `100` and `0`
    /// degenerate to always/never taken. All predictors converge here.
    FixedBias {
        /// Taken percentage in `0..=100`.
        taken_pct: u8,
    },
    /// `periodic:P` — taken exactly every `P`-th iteration (a counter
    /// modulus), the classic loop-period pattern history predictors
    /// learn when `P` fits their history window.
    Periodic {
        /// Period in iterations, `2..=4096`.
        period: u32,
    },
    /// `history:LAG` — a branch pair: the first tests a fresh random
    /// bit, the second tests the same bit `LAG` iterations later. The
    /// second is exactly predictable from global history (and from the
    /// shift-register value), the first by nobody.
    HistoryCorrelated {
        /// Correlation distance in iterations, `1..=8`.
        lag: u32,
    },
    /// `datadep:POP` — branches that are pure functions of a value
    /// drawn from a stable `POP`-element population replayed in
    /// seeded-random order: ambiguous to history, exact for a
    /// value-indexed predictor. The class ARVI should win.
    DataDep {
        /// Distinct values in the recurring population, `2..=4096`.
        population: u32,
    },
}

impl BranchClass {
    /// Short class tag used in reports: `bias`, `periodic`, `history`
    /// or `datadep`.
    pub fn tag(&self) -> &'static str {
        match self {
            BranchClass::FixedBias { .. } => "bias",
            BranchClass::Periodic { .. } => "periodic",
            BranchClass::HistoryCorrelated { .. } => "history",
            BranchClass::DataDep { .. } => "datadep",
        }
    }
}

impl fmt::Display for BranchClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BranchClass::FixedBias { taken_pct } => write!(f, "bias:{taken_pct}"),
            BranchClass::Periodic { period } => write!(f, "periodic:{period}"),
            BranchClass::HistoryCorrelated { lag } => write!(f, "history:{lag}"),
            BranchClass::DataDep { population } => write!(f, "datadep:{population}"),
        }
    }
}

/// The memory access pattern feeding the scenario's value stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemPattern {
    /// `stream` — sequential walk of a small ring: cache-friendly.
    Streaming,
    /// `stride:S` — the ring cursor advances `S` words per iteration
    /// over a larger ring, spreading accesses across cache lines. The
    /// generator forces the step odd (coprime with the ring) so the
    /// cursor orbit covers every slot.
    Strided {
        /// Cursor step in 8-byte words, `1..=4096`.
        stride: u32,
    },
    /// `chase:N` — pointer chasing through a seeded-random cycle of
    /// `N` two-word nodes: serialized load-to-load dependences, and
    /// cache-hostile once `N` outgrows the L1.
    PointerChase {
        /// Nodes in the cycle, `2..=65536`.
        nodes: u32,
    },
}

impl fmt::Display for MemPattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemPattern::Streaming => f.write_str("stream"),
            MemPattern::Strided { stride } => write!(f, "stride:{stride}"),
            MemPattern::PointerChase { nodes } => write!(f, "chase:{nodes}"),
        }
    }
}

/// A parse/validation failure, with the offending token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpecError {
    msg: String,
}

impl SpecError {
    fn new(msg: impl Into<String>) -> SpecError {
        SpecError { msg: msg.into() }
    }
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "scenario spec error: {}", self.msg)
    }
}

impl std::error::Error for SpecError {}

/// A complete synthetic-workload scenario: branch-behavior class plus
/// explicit dependence-topology and memory-pattern knobs.
///
/// Build one by [parsing](str::parse) the plain-text form, or start from
/// a curated scenario ([`crate::curated`]) and adjust fields.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ScenarioSpec {
    /// Scenario name (filename-safe: `[A-Za-z0-9._-]+`). Used as the
    /// workload name in results and traces.
    pub name: String,
    /// Branch-behavior class (`branch=`, default `bias:100`).
    pub branch: BranchClass,
    /// Dependence-chain depth between the loaded value and the value the
    /// branch consumes (`chain=`, `0..=32`, default 2): dependent ALU
    /// operations the DDT must walk through.
    pub chain_depth: u32,
    /// Consumers fed by each chain link (`fanout=`, `1..=4`, default 1):
    /// values above 1 add side accumulators reading every link, widening
    /// the dependence graph without deepening it.
    pub fanout: u32,
    /// Dead register writes per iteration (`dead=`, `0..=16`, default 0):
    /// results never read again — DDT rows that waste tracking space.
    pub dead_writes: u32,
    /// Independent filler instructions between value production and the
    /// branches that consume it (`gap=`, `0..=64`, default 8): dials the
    /// production-to-branch distance that decides whether a value has
    /// written back by prediction time.
    pub load_branch_gap: u32,
    /// Memory access pattern (`mem=`, default `stream`).
    pub mem: MemPattern,
}

fn parse_count(key: &str, value: &str, lo: u64, hi: u64) -> Result<u64, SpecError> {
    let n: u64 = value
        .parse()
        .map_err(|_| SpecError::new(format!("{key}={value}: not a number")))?;
    if n < lo || n > hi {
        return Err(SpecError::new(format!(
            "{key}={value}: out of range ({lo}..={hi})"
        )));
    }
    Ok(n)
}

/// Splits `class:arg`, with `arg` required.
fn split_arg<'v>(key: &str, value: &'v str) -> Result<(&'v str, &'v str), SpecError> {
    match value.split_once(':') {
        Some((head, arg)) if !arg.is_empty() => Ok((head, arg)),
        _ => Err(SpecError::new(format!(
            "{key}={value}: expected {key}=CLASS:ARG"
        ))),
    }
}

impl FromStr for ScenarioSpec {
    type Err = SpecError;

    fn from_str(s: &str) -> Result<ScenarioSpec, SpecError> {
        let mut tokens = s.split_whitespace();
        let name = tokens
            .next()
            .ok_or_else(|| SpecError::new("empty scenario line"))?;
        if name.contains('=') {
            return Err(SpecError::new(format!(
                "scenario must start with a name, got `{name}`"
            )));
        }
        if !name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '-'))
        {
            return Err(SpecError::new(format!(
                "name `{name}` is not filename-safe ([A-Za-z0-9._-]+)"
            )));
        }
        let mut spec = ScenarioSpec {
            name: name.to_string(),
            branch: BranchClass::FixedBias { taken_pct: 100 },
            chain_depth: 2,
            fanout: 1,
            dead_writes: 0,
            load_branch_gap: 8,
            mem: MemPattern::Streaming,
        };
        let mut seen = Vec::new();
        for token in tokens {
            let (key, value) = token
                .split_once('=')
                .ok_or_else(|| SpecError::new(format!("expected key=value, got `{token}`")))?;
            if seen.contains(&key.to_string()) {
                return Err(SpecError::new(format!("duplicate key `{key}`")));
            }
            seen.push(key.to_string());
            match key {
                "branch" => {
                    let (class, arg) = split_arg(key, value)?;
                    spec.branch = match class {
                        "bias" => BranchClass::FixedBias {
                            taken_pct: parse_count(key, arg, 0, 100)? as u8,
                        },
                        "periodic" => BranchClass::Periodic {
                            period: parse_count(key, arg, 2, 4096)? as u32,
                        },
                        "history" => BranchClass::HistoryCorrelated {
                            lag: parse_count(key, arg, 1, 8)? as u32,
                        },
                        "datadep" => BranchClass::DataDep {
                            population: parse_count(key, arg, 2, 4096)? as u32,
                        },
                        other => {
                            return Err(SpecError::new(format!(
                                "unknown branch class `{other}` \
                                 (bias|periodic|history|datadep)"
                            )))
                        }
                    };
                }
                "chain" => spec.chain_depth = parse_count(key, value, 0, 32)? as u32,
                "fanout" => spec.fanout = parse_count(key, value, 1, 4)? as u32,
                "dead" => spec.dead_writes = parse_count(key, value, 0, 16)? as u32,
                "gap" => spec.load_branch_gap = parse_count(key, value, 0, 64)? as u32,
                "mem" => {
                    spec.mem = if value == "stream" {
                        MemPattern::Streaming
                    } else {
                        let (class, arg) = split_arg(key, value)?;
                        match class {
                            "stride" => MemPattern::Strided {
                                stride: parse_count(key, arg, 1, 4096)? as u32,
                            },
                            "chase" => MemPattern::PointerChase {
                                nodes: parse_count(key, arg, 2, 65536)? as u32,
                            },
                            other => {
                                return Err(SpecError::new(format!(
                                    "unknown mem pattern `{other}` (stream|stride|chase)"
                                )))
                            }
                        }
                    };
                }
                other => {
                    return Err(SpecError::new(format!(
                        "unknown key `{other}` (branch|chain|fanout|dead|gap|mem)"
                    )))
                }
            }
        }
        Ok(spec)
    }
}

impl fmt::Display for ScenarioSpec {
    /// The canonical full plain-text form; parsing it reproduces the
    /// spec exactly.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} branch={} chain={} fanout={} dead={} gap={} mem={}",
            self.name,
            self.branch,
            self.chain_depth,
            self.fanout,
            self.dead_writes,
            self.load_branch_gap,
            self.mem
        )
    }
}

impl ScenarioSpec {
    /// A stable 64-bit fingerprint of the canonical form (FNV-1a).
    /// Distinguishes same-named scenarios with different knobs, e.g. in
    /// trace-cache file names.
    pub fn fingerprint(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in self.to_string().bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }
}

/// Parses a scenario file: one scenario per line, blank lines and `#`
/// comments ignored. Duplicate names are rejected (they would collide in
/// results and trace caches).
pub fn parse_scenarios(text: &str) -> Result<Vec<ScenarioSpec>, SpecError> {
    let mut out: Vec<ScenarioSpec> = Vec::new();
    for (ln, line) in text.lines().enumerate() {
        let line = line.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let spec: ScenarioSpec = line
            .parse()
            .map_err(|e: SpecError| SpecError::new(format!("line {}: {}", ln + 1, e.msg)))?;
        if out.iter().any(|s| s.name == spec.name) {
            return Err(SpecError::new(format!(
                "line {}: duplicate scenario name `{}`",
                ln + 1,
                spec.name
            )));
        }
        out.push(spec);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_line_parses() {
        let s: ScenarioSpec = "deep branch=datadep:64 chain=8 fanout=2 dead=3 gap=16 mem=chase:512"
            .parse()
            .unwrap();
        assert_eq!(s.name, "deep");
        assert_eq!(s.branch, BranchClass::DataDep { population: 64 });
        assert_eq!(s.chain_depth, 8);
        assert_eq!(s.fanout, 2);
        assert_eq!(s.dead_writes, 3);
        assert_eq!(s.load_branch_gap, 16);
        assert_eq!(s.mem, MemPattern::PointerChase { nodes: 512 });
    }

    #[test]
    fn defaults_fill_missing_keys() {
        let s: ScenarioSpec = "bare".parse().unwrap();
        assert_eq!(s.branch, BranchClass::FixedBias { taken_pct: 100 });
        assert_eq!(s.chain_depth, 2);
        assert_eq!(s.fanout, 1);
        assert_eq!(s.dead_writes, 0);
        assert_eq!(s.load_branch_gap, 8);
        assert_eq!(s.mem, MemPattern::Streaming);
    }

    #[test]
    fn display_round_trips() {
        for line in [
            "a branch=bias:90 chain=0 fanout=4 dead=16 gap=0 mem=stream",
            "b branch=periodic:12 chain=5 fanout=1 dead=0 gap=64 mem=stride:16",
            "c branch=history:3 chain=2 fanout=2 dead=1 gap=9 mem=chase:4096",
            "d branch=datadep:2 chain=32 fanout=3 dead=0 gap=1 mem=stream",
        ] {
            let s: ScenarioSpec = line.parse().unwrap();
            let round: ScenarioSpec = s.to_string().parse().unwrap();
            assert_eq!(s, round, "round trip of `{line}`");
        }
    }

    #[test]
    fn rejections() {
        for bad in [
            "",
            "branch=bias:50",      // no name
            "x/y branch=bias:50",  // unsafe name
            "a branch=bias:101",   // out of range
            "a branch=warp:3",     // unknown class
            "a branch=periodic:1", // period too small
            "a chain=33",          // too deep
            "a fanout=0",          // zero fanout
            "a mem=stride",        // missing arg
            "a mem=heap:4",        // unknown pattern
            "a wibble=1",          // unknown key
            "a chain=2 chain=3",   // duplicate key
            "a chain=banana",      // not a number
        ] {
            assert!(bad.parse::<ScenarioSpec>().is_err(), "accepted `{bad}`");
        }
    }

    #[test]
    fn file_parsing_skips_comments_and_catches_duplicates() {
        let specs = parse_scenarios(
            "# suite\n\none branch=bias:100   # trailing comment\ntwo branch=datadep:8\n",
        )
        .unwrap();
        assert_eq!(specs.len(), 2);
        assert_eq!(specs[1].name, "two");

        let err = parse_scenarios("one\ntwo\none branch=bias:50\n").unwrap_err();
        assert!(err.to_string().contains("duplicate scenario name"));
        let err = parse_scenarios("\n\nbad key\n").unwrap_err();
        assert!(err.to_string().contains("line 3"));
    }

    #[test]
    fn fingerprint_distinguishes_knobs() {
        let a: ScenarioSpec = "same branch=datadep:64 chain=2".parse().unwrap();
        let b: ScenarioSpec = "same branch=datadep:64 chain=3".parse().unwrap();
        assert_ne!(a.fingerprint(), b.fingerprint());
        let a2: ScenarioSpec = a.to_string().parse().unwrap();
        assert_eq!(a.fingerprint(), a2.fingerprint());
    }
}

//! The curated scenario set registered alongside the benchmark suite.
//!
//! These are the scenarios the experiment binaries accept by bare name
//! (`--scenario datadep-deep`) and the grid `synth_report`
//! characterizes. They cover the branch-behavior taxonomy — fixed-bias,
//! periodic, history-correlated, data-dependent — crossed with the
//! dependence-topology and memory knobs the classes exercise hardest.

use crate::spec::ScenarioSpec;

/// Canonical spec lines for the curated set (also usable as scenario-file
/// content; see [`crate::parse_scenarios`]).
pub const CURATED: [&str; 9] = [
    // Convergence anchors: every predictor should agree here.
    "bias-always branch=bias:100 chain=2 fanout=1 dead=0 gap=8 mem=stream",
    "bias-90 branch=bias:90 chain=2 fanout=1 dead=0 gap=8 mem=stream",
    // Period patterns: history predictors close the gap once the period
    // fits their window.
    "periodic-4 branch=periodic:4 chain=2 fanout=1 dead=0 gap=8 mem=stream",
    "periodic-12 branch=periodic:12 chain=2 fanout=1 dead=0 gap=8 mem=stride:16",
    // Correlation: the outcome lives in another branch's history.
    "history-3 branch=history:3 chain=2 fanout=1 dead=0 gap=8 mem=stream",
    // Data-dependent branches: the class ARVI should win.
    "datadep-shallow branch=datadep:64 chain=1 fanout=1 dead=0 gap=12 mem=stream",
    "datadep-deep branch=datadep:64 chain=8 fanout=2 dead=2 gap=20 mem=stride:16",
    "datadep-chase branch=datadep:128 chain=4 fanout=2 dead=1 gap=16 mem=chase:65536",
    "datadep-pressure branch=datadep:64 chain=6 fanout=3 dead=8 gap=24 mem=stream",
];

/// The curated scenarios, parsed.
pub fn curated() -> Vec<ScenarioSpec> {
    CURATED
        .iter()
        .map(|line| line.parse().expect("curated specs are valid"))
        .collect()
}

/// Looks up a curated scenario by name.
pub fn find(name: &str) -> Option<ScenarioSpec> {
    curated().into_iter().find(|s| s.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::BranchClass;

    #[test]
    fn curated_set_is_valid_and_distinct() {
        let set = curated();
        assert_eq!(set.len(), CURATED.len());
        for (i, a) in set.iter().enumerate() {
            for b in &set[i + 1..] {
                assert_ne!(a.name, b.name, "duplicate curated name");
            }
        }
        // The taxonomy is covered.
        for tag in ["bias", "periodic", "history", "datadep"] {
            assert!(
                set.iter().any(|s| s.branch.tag() == tag),
                "no curated scenario for class {tag}"
            );
        }
    }

    #[test]
    fn find_by_name() {
        let s = find("datadep-deep").expect("curated");
        assert!(matches!(s.branch, BranchClass::DataDep { population: 64 }));
        assert!(find("nope").is_none());
    }

    #[test]
    fn curated_lines_are_canonical() {
        for line in CURATED {
            let spec: ScenarioSpec = line.parse().unwrap();
            assert_eq!(spec.to_string(), line, "non-canonical curated line");
        }
    }
}

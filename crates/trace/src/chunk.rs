//! Chunk-level encoding of [`DynInst`] runs.
//!
//! A chunk is an independently decodable run of up to
//! [`DEFAULT_CHUNK_INSTS`] records. Each record is encoded against a
//! small predictor context that resets at the chunk boundary, so a
//! reader can seek to any chunk via the index without decoding its
//! predecessors:
//!
//! * `seq` — zigzag varint delta against the previous record's `seq + 1`
//!   (0 for the dense streams the emulator produces).
//! * `pc` — zigzag varint delta against the previous record's successor
//!   PC (fall-through or branch target), i.e. 0 whenever control flow
//!   goes where the previous record said it would.
//! * `mem_addr` — zigzag varint delta against the previous memory
//!   address in the chunk (strided accesses stay short).
//! * `branch.fallthrough` — delta against `pc + 1`; `branch.next_pc` —
//!   delta against `fallthrough` (0 for every not-taken branch).
//! * `result`/`hoist` — plain varints, elided when zero.
//! * registers — one byte each, present-flagged.
//!
//! Two leading flag bytes carry the instruction kind, operand presence
//! and zero-elision flags. The emulator's committed stream encodes to
//! roughly 5–7 bytes per instruction.

use arvi_isa::{BranchInfo, DynInst, InstKind, Reg, NUM_LOGICAL_REGS};

use crate::codec::{read_varint, unzigzag, write_varint, zigzag};
use crate::TraceError;

/// Default chunk capacity in instructions. 4096 records keep the decode
/// buffer around 256 KB while amortizing per-chunk seek/checksum costs.
pub const DEFAULT_CHUNK_INSTS: usize = 4096;

const KINDS: [InstKind; 9] = [
    InstKind::IntAlu,
    InstKind::IntMul,
    InstKind::IntDiv,
    InstKind::Load,
    InstKind::Store,
    InstKind::Branch,
    InstKind::Jump,
    InstKind::JumpReg,
    InstKind::Halt,
];

fn kind_code(kind: InstKind) -> u8 {
    KINDS
        .iter()
        .position(|&k| k == kind)
        .expect("every InstKind has a code") as u8
}

// flags0 layout.
const F0_KIND_MASK: u8 = 0x0F;
const F0_SRC0: u8 = 1 << 4;
const F0_SRC1: u8 = 1 << 5;
const F0_DEST: u8 = 1 << 6;
const F0_BRANCH: u8 = 1 << 7;

// flags1 layout. The three delta-presence bits make the common cases
// (dense seq, control flow going where the previous record said,
// fall-through == pc + 1) cost zero payload bytes *and* zero varint
// decodes.
const F1_RESULT: u8 = 1 << 0;
const F1_MEM: u8 = 1 << 1;
const F1_HOIST: u8 = 1 << 2;
const F1_TAKEN: u8 = 1 << 3;
const F1_COND: u8 = 1 << 4;
const F1_SEQ_DELTA: u8 = 1 << 5;
const F1_PC_DELTA: u8 = 1 << 6;
const F1_FALLTHROUGH_DELTA: u8 = 1 << 7;

/// The per-chunk predictor context; resets at every chunk boundary.
struct Ctx {
    /// Expected `seq` of the next record.
    next_seq: u64,
    /// Expected `pc` of the next record (successor of the previous one).
    next_pc: i64,
    /// Previous memory address seen in the chunk.
    prev_mem: u64,
    /// Previous non-zero result value seen in the chunk.
    prev_result: u64,
}

impl Ctx {
    fn new(first_seq: u64) -> Ctx {
        Ctx {
            next_seq: first_seq,
            next_pc: 0,
            prev_mem: 0,
            prev_result: 0,
        }
    }

    fn advance(&mut self, d: &DynInst) {
        self.next_seq = d.seq.wrapping_add(1);
        self.next_pc = match d.branch {
            Some(b) => b.next_pc as i64,
            None => d.pc as i64 + 1,
        };
        if d.mem_addr != 0 {
            self.prev_mem = d.mem_addr;
        }
        if d.result != 0 {
            self.prev_result = d.result;
        }
    }
}

/// Encodes `insts` (one chunk's worth) into `out`. The first record's
/// `seq` must be supplied to the decoder out of band (the chunk index
/// stores it).
pub fn encode_chunk(insts: &[DynInst], out: &mut Vec<u8>) {
    let first_seq = insts.first().map_or(0, |d| d.seq);
    let mut ctx = Ctx::new(first_seq);
    for d in insts {
        let mut flags0 = kind_code(d.kind);
        if d.srcs[0].is_some() {
            flags0 |= F0_SRC0;
        }
        if d.srcs[1].is_some() {
            flags0 |= F0_SRC1;
        }
        if d.dest.is_some() {
            flags0 |= F0_DEST;
        }
        if d.branch.is_some() {
            flags0 |= F0_BRANCH;
        }
        let mut flags1 = 0u8;
        if d.result != 0 {
            flags1 |= F1_RESULT;
        }
        if d.mem_addr != 0 {
            flags1 |= F1_MEM;
        }
        if d.hoist != 0 {
            flags1 |= F1_HOIST;
        }
        if d.seq != ctx.next_seq {
            flags1 |= F1_SEQ_DELTA;
        }
        if d.pc as i64 != ctx.next_pc {
            flags1 |= F1_PC_DELTA;
        }
        if let Some(b) = d.branch {
            if b.taken {
                flags1 |= F1_TAKEN;
            }
            if b.conditional {
                flags1 |= F1_COND;
            }
            if b.fallthrough as i64 != d.pc as i64 + 1 {
                flags1 |= F1_FALLTHROUGH_DELTA;
            }
        }
        out.push(flags0);
        out.push(flags1);

        if flags1 & F1_SEQ_DELTA != 0 {
            write_varint(out, zigzag(d.seq.wrapping_sub(ctx.next_seq) as i64));
        }
        if flags1 & F1_PC_DELTA != 0 {
            write_varint(out, zigzag(d.pc as i64 - ctx.next_pc));
        }
        for src in d.srcs.into_iter().flatten() {
            out.push(src.index() as u8);
        }
        if let Some(dest) = d.dest {
            out.push(dest.index() as u8);
        }
        if d.result != 0 {
            write_varint(out, zigzag(d.result.wrapping_sub(ctx.prev_result) as i64));
        }
        if d.mem_addr != 0 {
            write_varint(out, zigzag(d.mem_addr.wrapping_sub(ctx.prev_mem) as i64));
        }
        if d.hoist != 0 {
            write_varint(out, d.hoist as u64);
        }
        if let Some(b) = d.branch {
            if flags1 & F1_FALLTHROUGH_DELTA != 0 {
                write_varint(out, zigzag(b.fallthrough as i64 - (d.pc as i64 + 1)));
            }
            write_varint(out, zigzag(b.next_pc as i64 - b.fallthrough as i64));
        }
        ctx.advance(d);
    }
}

fn read_reg(buf: &[u8], pos: &mut usize) -> Result<Reg, TraceError> {
    let &byte = buf.get(*pos).ok_or(TraceError::Truncated)?;
    *pos += 1;
    if (byte as usize) >= NUM_LOGICAL_REGS {
        return Err(TraceError::corrupt("register id out of range"));
    }
    Ok(Reg::new(byte))
}

fn read_pc_delta(buf: &[u8], pos: &mut usize, base: i64) -> Result<u32, TraceError> {
    let pc = base + unzigzag(read_varint(buf, pos)?);
    u32::try_from(pc).map_err(|_| TraceError::corrupt("program counter out of u32 range"))
}

/// Decodes a chunk previously produced by [`encode_chunk`], appending
/// `count` records to `out` (which the caller usually clears first; its
/// capacity is reused across chunks). `first_seq` comes from the chunk
/// index.
pub fn decode_chunk(
    buf: &[u8],
    count: usize,
    first_seq: u64,
    out: &mut Vec<DynInst>,
) -> Result<(), TraceError> {
    let mut ctx = Ctx::new(first_seq);
    let mut pos = 0usize;
    for _ in 0..count {
        let &flags0 = buf.get(pos).ok_or(TraceError::Truncated)?;
        let &flags1 = buf.get(pos + 1).ok_or(TraceError::Truncated)?;
        pos += 2;
        let kind = *KINDS
            .get((flags0 & F0_KIND_MASK) as usize)
            .ok_or_else(|| TraceError::corrupt("unknown instruction kind"))?;

        let seq = if flags1 & F1_SEQ_DELTA != 0 {
            ctx.next_seq
                .wrapping_add(unzigzag(read_varint(buf, &mut pos)?) as u64)
        } else {
            ctx.next_seq
        };
        let pc = if flags1 & F1_PC_DELTA != 0 {
            read_pc_delta(buf, &mut pos, ctx.next_pc)?
        } else {
            u32::try_from(ctx.next_pc)
                .map_err(|_| TraceError::corrupt("program counter out of u32 range"))?
        };
        let src0 = if flags0 & F0_SRC0 != 0 {
            Some(read_reg(buf, &mut pos)?)
        } else {
            None
        };
        let src1 = if flags0 & F0_SRC1 != 0 {
            Some(read_reg(buf, &mut pos)?)
        } else {
            None
        };
        let srcs = [src0, src1];
        let dest = if flags0 & F0_DEST != 0 {
            Some(read_reg(buf, &mut pos)?)
        } else {
            None
        };
        let result = if flags1 & F1_RESULT != 0 {
            ctx.prev_result
                .wrapping_add(unzigzag(read_varint(buf, &mut pos)?) as u64)
        } else {
            0
        };
        let mem_addr = if flags1 & F1_MEM != 0 {
            ctx.prev_mem
                .wrapping_add(unzigzag(read_varint(buf, &mut pos)?) as u64)
        } else {
            0
        };
        let hoist = if flags1 & F1_HOIST != 0 {
            u32::try_from(read_varint(buf, &mut pos)?)
                .map_err(|_| TraceError::corrupt("hoist distance out of u32 range"))?
        } else {
            0
        };
        let branch = if flags0 & F0_BRANCH != 0 {
            let fallthrough = if flags1 & F1_FALLTHROUGH_DELTA != 0 {
                read_pc_delta(buf, &mut pos, pc as i64 + 1)?
            } else {
                u32::try_from(pc as i64 + 1)
                    .map_err(|_| TraceError::corrupt("program counter out of u32 range"))?
            };
            let next_pc = read_pc_delta(buf, &mut pos, fallthrough as i64)?;
            Some(BranchInfo {
                taken: flags1 & F1_TAKEN != 0,
                next_pc,
                fallthrough,
                conditional: flags1 & F1_COND != 0,
            })
        } else {
            None
        };

        let d = DynInst {
            seq,
            pc,
            kind,
            srcs,
            dest,
            result,
            mem_addr,
            branch,
            hoist,
        };
        ctx.advance(&d);
        out.push(d);
    }
    if pos != buf.len() {
        return Err(TraceError::corrupt("trailing bytes after chunk payload"));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use arvi_isa::Emulator;
    use arvi_workloads::Benchmark;

    #[test]
    fn kind_codes_are_dense_and_stable() {
        for (i, &k) in KINDS.iter().enumerate() {
            assert_eq!(kind_code(k) as usize, i);
        }
    }

    #[test]
    fn emulator_stream_round_trips() {
        let insts: Vec<DynInst> = Emulator::new(Benchmark::M88ksim.program(7))
            .take(3_000)
            .collect();
        let mut buf = Vec::new();
        encode_chunk(&insts, &mut buf);
        let mut back = Vec::new();
        decode_chunk(&buf, insts.len(), insts[0].seq, &mut back).unwrap();
        assert_eq!(insts, back);
        // The whole point of the delta encoding: well under the 56-byte
        // in-memory footprint per record.
        assert!(
            buf.len() < insts.len() * 10,
            "{} bytes for {} insts",
            buf.len(),
            insts.len()
        );
    }

    #[test]
    fn empty_chunk_round_trips() {
        let mut buf = Vec::new();
        encode_chunk(&[], &mut buf);
        assert!(buf.is_empty());
        let mut back = Vec::new();
        decode_chunk(&buf, 0, 0, &mut back).unwrap();
        assert!(back.is_empty());
    }

    #[test]
    fn truncated_payload_rejected() {
        let insts: Vec<DynInst> = Emulator::new(Benchmark::Li.program(1)).take(50).collect();
        let mut buf = Vec::new();
        encode_chunk(&insts, &mut buf);
        let mut back = Vec::new();
        assert!(decode_chunk(&buf[..buf.len() - 1], insts.len(), insts[0].seq, &mut back).is_err());
        back.clear();
        // Trailing garbage is also a structural error.
        let mut padded = buf.clone();
        padded.push(0);
        assert!(decode_chunk(&padded, insts.len(), insts[0].seq, &mut back).is_err());
    }

    #[test]
    fn bad_register_id_rejected() {
        let d = DynInst {
            seq: 0,
            pc: 0,
            kind: InstKind::IntAlu,
            srcs: [Some(Reg::new(31)), None],
            dest: None,
            result: 0,
            mem_addr: 0,
            branch: None,
            hoist: 0,
        };
        let mut buf = Vec::new();
        encode_chunk(&[d], &mut buf);
        // The register byte is the last one; forge an out-of-range id.
        *buf.last_mut().unwrap() = 200;
        let mut back = Vec::new();
        let err = decode_chunk(&buf, 1, 0, &mut back).unwrap_err();
        assert!(err.to_string().contains("register"), "{err}");
    }
}

//! Byte-level primitives of the trace format: LEB128 varints, zigzag
//! signed mapping, and CRC-32 chunk checksums.

use crate::TraceError;

/// Appends `v` as an LEB128 varint (7 bits per byte, high bit = more).
#[inline]
pub fn write_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Reads an LEB128 varint at `*pos`, advancing it.
#[inline]
pub fn read_varint(buf: &[u8], pos: &mut usize) -> Result<u64, TraceError> {
    // Fast path: the delta encoding makes single-byte varints by far the
    // most common case on real traces.
    let &first = buf.get(*pos).ok_or(TraceError::Truncated)?;
    *pos += 1;
    if first < 0x80 {
        return Ok(first as u64);
    }
    let mut v = (first & 0x7F) as u64;
    let mut shift = 7u32;
    loop {
        let &byte = buf.get(*pos).ok_or(TraceError::Truncated)?;
        *pos += 1;
        if shift >= 64 || (shift == 63 && byte > 1) {
            return Err(TraceError::corrupt("varint overflows u64"));
        }
        v |= ((byte & 0x7F) as u64) << shift;
        if byte & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
    }
}

/// Maps a signed delta onto an unsigned varint-friendly value
/// (0, -1, 1, -2, ... -> 0, 1, 2, 3, ...).
#[inline]
pub fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag`].
#[inline]
pub fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

const fn crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

/// Slice-by-8 lookup tables: `TABLES[k][b]` is the CRC contribution of
/// byte `b` positioned `k` bytes before the end of an 8-byte group.
const fn crc_tables() -> [[u32; 256]; 8] {
    let mut tables = [[0u32; 256]; 8];
    tables[0] = crc_table();
    let mut i = 0;
    while i < 256 {
        let mut c = tables[0][i];
        let mut k = 1;
        while k < 8 {
            c = tables[0][(c & 0xFF) as usize] ^ (c >> 8);
            tables[k][i] = c;
            k += 1;
        }
        i += 1;
    }
    tables
}

static CRC_TABLES: [[u32; 256]; 8] = crc_tables();

/// CRC-32 (IEEE 802.3 polynomial) of `bytes`, eight bytes per step
/// (slice-by-8) — chunk checksums sit on the trace load/verify path, so
/// byte-at-a-time table lookup would dominate decode cost.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    let mut groups = bytes.chunks_exact(8);
    for g in &mut groups {
        let lo = u32::from_le_bytes([g[0], g[1], g[2], g[3]]) ^ c;
        let hi = u32::from_le_bytes([g[4], g[5], g[6], g[7]]);
        c = CRC_TABLES[7][(lo & 0xFF) as usize]
            ^ CRC_TABLES[6][((lo >> 8) & 0xFF) as usize]
            ^ CRC_TABLES[5][((lo >> 16) & 0xFF) as usize]
            ^ CRC_TABLES[4][(lo >> 24) as usize]
            ^ CRC_TABLES[3][(hi & 0xFF) as usize]
            ^ CRC_TABLES[2][((hi >> 8) & 0xFF) as usize]
            ^ CRC_TABLES[1][((hi >> 16) & 0xFF) as usize]
            ^ CRC_TABLES[0][(hi >> 24) as usize];
    }
    for &b in groups.remainder() {
        c = CRC_TABLES[0][((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varint_round_trips() {
        let mut buf = Vec::new();
        let samples = [
            0u64,
            1,
            127,
            128,
            16_383,
            16_384,
            u32::MAX as u64,
            u64::MAX - 1,
            u64::MAX,
        ];
        for &v in &samples {
            buf.clear();
            write_varint(&mut buf, v);
            let mut pos = 0;
            assert_eq!(read_varint(&buf, &mut pos).unwrap(), v);
            assert_eq!(pos, buf.len());
        }
    }

    #[test]
    fn varint_rejects_truncation_and_overflow() {
        let mut pos = 0;
        assert!(matches!(
            read_varint(&[0x80, 0x80], &mut pos),
            Err(TraceError::Truncated)
        ));
        // 11 continuation bytes: more than 64 bits of payload.
        let overlong = [0xFFu8; 10];
        let mut pos = 0;
        assert!(read_varint(&overlong, &mut pos).is_err());
    }

    #[test]
    fn zigzag_round_trips() {
        for v in [0i64, 1, -1, 2, -2, i64::MAX, i64::MIN, 12345, -98765] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
        assert_eq!(zigzag(0), 0);
        assert_eq!(zigzag(-1), 1);
        assert_eq!(zigzag(1), 2);
    }

    #[test]
    fn crc32_matches_known_vector() {
        // The classic check value for CRC-32/IEEE.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_ne!(crc32(b"a"), crc32(b"b"));
    }

    #[test]
    fn crc32_slice_by_8_agrees_with_byte_at_a_time() {
        fn reference(bytes: &[u8]) -> u32 {
            let mut c = 0xFFFF_FFFFu32;
            for &b in bytes {
                c = CRC_TABLES[0][((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
            }
            !c
        }
        let data: Vec<u8> = (0..1024u32)
            .map(|i| (i.wrapping_mul(2654435761) >> 13) as u8)
            .collect();
        for len in [0, 1, 7, 8, 9, 15, 16, 63, 64, 255, 1024] {
            assert_eq!(crc32(&data[..len]), reference(&data[..len]), "len {len}");
        }
    }
}

//! The versioned on-disk trace container (`.arvitrace`).
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! header:  magic "ARVITRC\x01" | u32 version | u32 name_len | name bytes | u64 seed
//! payload: encoded chunks, back to back
//! index:   per chunk { u64 offset, u32 len, u32 count, u64 first_seq, u32 crc }
//! footer:  u64 index_offset | u32 chunk_count | u64 total_insts
//!          | u32 file_crc | magic "ARVIEND\x01"
//! ```
//!
//! `file_crc` is the CRC-32 of every byte before it, so corruption
//! anywhere in the container — header, payload, index or the other
//! footer fields — is rejected at load; the per-chunk CRCs additionally
//! localize payload damage and guard in-memory chunk decoding.
//!
//! The index lives *after* the payload so a writer can stream chunks
//! without knowing the final count, and a reader can locate every chunk
//! from the fixed-size footer — which is what lets replay seek straight
//! past a warmup prefix without decoding it. Bumping [`FORMAT_VERSION`]
//! invalidates old files (readers reject a version mismatch rather than
//! guessing at the encoding).

use std::path::Path;

use crate::io::{StdIo, TraceIo};
use crate::store::{ChunkInfo, Trace};
use crate::TraceError;

/// Current trace format version. Covers both the container layout and
/// the per-record encoding in [`crate::chunk`].
pub const FORMAT_VERSION: u32 = 1;

const HEADER_MAGIC: &[u8; 8] = b"ARVITRC\x01";
const FOOTER_MAGIC: &[u8; 8] = b"ARVIEND\x01";
const FOOTER_LEN: usize = 8 + 4 + 8 + 4 + 8;
/// Bytes after the `file_crc` field (the field itself + footer magic).
const CRC_TRAILER_LEN: usize = 4 + 8;
const INDEX_ENTRY_LEN: usize = 8 + 4 + 4 + 8 + 4;

fn push_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn push_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

struct Parser<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], TraceError> {
        let bytes = self
            .buf
            .get(self.pos..self.pos + n)
            .ok_or(TraceError::Truncated)?;
        self.pos += n;
        Ok(bytes)
    }

    fn u32(&mut self) -> Result<u32, TraceError> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    fn u64(&mut self) -> Result<u64, TraceError> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }
}

impl Trace {
    /// Serializes the trace into the container format.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(
            8 + 4
                + 4
                + self.name.len()
                + 8
                + self.data.len()
                + self.chunks.len() * INDEX_ENTRY_LEN
                + FOOTER_LEN,
        );
        out.extend_from_slice(HEADER_MAGIC);
        push_u32(&mut out, FORMAT_VERSION);
        push_u32(&mut out, self.name.len() as u32);
        out.extend_from_slice(self.name.as_bytes());
        push_u64(&mut out, self.seed);
        out.extend_from_slice(&self.data);
        let index_offset = out.len() as u64;
        for c in &self.chunks {
            push_u64(&mut out, c.offset);
            push_u32(&mut out, c.len);
            push_u32(&mut out, c.count);
            push_u64(&mut out, c.first_seq);
            push_u32(&mut out, c.crc);
        }
        push_u64(&mut out, index_offset);
        push_u32(&mut out, self.chunks.len() as u32);
        push_u64(&mut out, self.total);
        let file_crc = crate::codec::crc32(&out);
        push_u32(&mut out, file_crc);
        out.extend_from_slice(FOOTER_MAGIC);
        out
    }

    /// Parses a trace from container bytes and fully verifies it (magic,
    /// version, index bounds, every chunk checksum, every record).
    pub fn from_bytes(buf: &[u8]) -> Result<Trace, TraceError> {
        if buf.len() < 8 + 4 + 4 + 8 + FOOTER_LEN {
            return Err(TraceError::Truncated);
        }
        // Magics first (is this a trace file at all?), then the whole-
        // file checksum before trusting any other field: corruption
        // anywhere in header, payload, index or footer surfaces as a
        // checksum mismatch rather than a downstream parse artifact.
        if &buf[..8] != HEADER_MAGIC || &buf[buf.len() - 8..] != FOOTER_MAGIC {
            return Err(TraceError::BadMagic);
        }
        let crc_pos = buf.len() - CRC_TRAILER_LEN;
        let file_crc = u32::from_le_bytes(buf[crc_pos..crc_pos + 4].try_into().expect("4 bytes"));
        if crate::codec::crc32(&buf[..crc_pos]) != file_crc {
            return Err(TraceError::FileChecksumMismatch);
        }

        let mut p = Parser { buf, pos: 8 };
        let version = p.u32()?;
        if version != FORMAT_VERSION {
            return Err(TraceError::BadVersion(version));
        }
        let name_len = p.u32()? as usize;
        let name = std::str::from_utf8(p.take(name_len)?)
            .map_err(|_| TraceError::corrupt("workload name is not UTF-8"))?
            .to_string();
        let seed = p.u64()?;
        let payload_start = p.pos;

        let mut f = Parser {
            buf,
            pos: buf.len() - FOOTER_LEN,
        };
        let index_offset = f.u64()? as usize;
        let chunk_count = f.u32()? as usize;
        let total = f.u64()?;
        if index_offset < payload_start
            || index_offset
                .checked_add(chunk_count * INDEX_ENTRY_LEN)
                .is_none_or(|end| end != buf.len() - FOOTER_LEN)
        {
            return Err(TraceError::corrupt("chunk index bounds are inconsistent"));
        }

        let data = buf[payload_start..index_offset].to_vec();
        let mut idx = Parser {
            buf,
            pos: index_offset,
        };
        let mut chunks = Vec::with_capacity(chunk_count);
        for _ in 0..chunk_count {
            let info = ChunkInfo {
                offset: idx.u64()?,
                len: idx.u32()?,
                count: idx.u32()?,
                first_seq: idx.u64()?,
                crc: idx.u32()?,
            };
            if (info.offset as usize)
                .checked_add(info.len as usize)
                .is_none_or(|end| end > data.len())
            {
                return Err(TraceError::corrupt("chunk payload out of bounds"));
            }
            chunks.push(info);
        }

        let trace = Trace {
            name,
            seed,
            total,
            data,
            chunks,
        };
        trace.verify()?;
        Ok(trace)
    }

    /// Writes the trace to `path` (see the module docs for the layout).
    ///
    /// The write is atomic and durable (temp file + fsync + rename via
    /// [`StdIo`]): a process killed mid-write leaves either the old
    /// file or the complete new one, never a torn container. Errors
    /// carry the failing path ([`TraceError::File`]).
    pub fn write_to(&self, path: &Path) -> Result<(), TraceError> {
        self.write_to_with(path, &StdIo)
    }

    /// [`Trace::write_to`] through an explicit [`TraceIo`]
    /// implementation (the fault-injection seam).
    pub fn write_to_with(&self, path: &Path, io: &dyn TraceIo) -> Result<(), TraceError> {
        io.write_atomic(path, &self.to_bytes())
    }

    /// Reads and fully verifies a trace file written by
    /// [`Trace::write_to`]. Errors carry the failing path
    /// ([`TraceError::File`]); match on [`TraceError::root`] to
    /// classify them.
    pub fn read_from(path: &Path) -> Result<Trace, TraceError> {
        Trace::read_from_with(path, &StdIo)
    }

    /// [`Trace::read_from`] through an explicit [`TraceIo`]
    /// implementation (the fault-injection seam).
    pub fn read_from_with(path: &Path, io: &dyn TraceIo) -> Result<Trace, TraceError> {
        let buf = io.read(path)?;
        Trace::from_bytes(&buf).map_err(|e| e.for_path(path))
    }
}

/// Locates chunk `chunk`'s payload inside raw container bytes without
/// verifying them: `(offset, len)` into `container`. Used by the
/// fault-injection harness to corrupt "byte N of chunk K" of a valid
/// file at exact offsets; returns `None` when the container is too
/// mangled to navigate (the harness then falls back to absolute
/// offsets).
pub fn chunk_payload_span(container: &[u8], chunk: usize) -> Option<(usize, usize)> {
    if container.len() < FOOTER_LEN || !container.ends_with(FOOTER_MAGIC) {
        return None;
    }
    let mut f = Parser {
        buf: container,
        pos: container.len() - FOOTER_LEN,
    };
    let index_offset = f.u64().ok()? as usize;
    let chunk_count = f.u32().ok()? as usize;
    if chunk >= chunk_count {
        return None;
    }
    let mut idx = Parser {
        buf: container,
        pos: index_offset.checked_add(chunk * INDEX_ENTRY_LEN)?,
    };
    let offset = idx.u64().ok()? as usize;
    let len = idx.u32().ok()? as usize;
    // Payload offsets are relative to the end of the header.
    let mut h = Parser {
        buf: container,
        pos: 8 + 4,
    };
    let name_len = h.u32().ok()? as usize;
    let payload_start = 8 + 4 + 4 + name_len + 8;
    let abs = payload_start.checked_add(offset)?;
    (abs.checked_add(len)? <= container.len()).then_some((abs, len))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::replay::TraceReader;
    use crate::store::TraceWriter;
    use arvi_isa::{DynInst, Emulator};
    use arvi_workloads::Benchmark;

    fn sample_trace() -> Trace {
        let emu = Emulator::new(Benchmark::Perl.program(4));
        let mut w = TraceWriter::new("perl", 4).with_chunk_insts(128);
        for d in emu.take(1_500) {
            w.push(d);
        }
        w.finish()
    }

    #[test]
    fn bytes_round_trip() {
        let trace = sample_trace();
        let back = Trace::from_bytes(&trace.to_bytes()).unwrap();
        assert_eq!(back.name(), "perl");
        assert_eq!(back.seed(), 4);
        assert_eq!(back.len(), 1_500);
        let a: Vec<DynInst> = TraceReader::new(&trace).collect();
        let b: Vec<DynInst> = TraceReader::new(&back).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join(format!("arvi-trace-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("perl.arvitrace");
        let trace = sample_trace();
        trace.write_to(&path).unwrap();
        let back = Trace::read_from(&path).unwrap();
        assert_eq!(back.len(), trace.len());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn bad_magic_and_version_rejected() {
        let trace = sample_trace();
        let mut bytes = trace.to_bytes();
        bytes[0] ^= 0xFF;
        assert!(matches!(
            Trace::from_bytes(&bytes),
            Err(TraceError::BadMagic)
        ));
        // A *well-formed* file from a future format version (valid CRC,
        // different version field) is rejected by version, not checksum.
        let mut bytes = trace.to_bytes();
        bytes[8] = 99;
        let crc_pos = bytes.len() - CRC_TRAILER_LEN;
        let crc = crate::codec::crc32(&bytes[..crc_pos]);
        bytes[crc_pos..crc_pos + 4].copy_from_slice(&crc.to_le_bytes());
        assert!(matches!(
            Trace::from_bytes(&bytes),
            Err(TraceError::BadVersion(99))
        ));
    }

    #[test]
    fn corruption_anywhere_rejected_at_load() {
        let trace = sample_trace();
        let good = trace.to_bytes();
        // Every single-bit flip outside the trailing magic must fail the
        // whole-file checksum; sample the header, payload and index
        // regions (the index was the historical blind spot: a flipped
        // `first_seq` decodes "cleanly" into wrong sequence numbers).
        let index_offset = good.len() - FOOTER_LEN - trace.chunk_count() * INDEX_ENTRY_LEN;
        let probes = [
            9,                                // header (version field)
            24 + trace.encoded_bytes() / 2,   // chunk payload
            index_offset + 8 + 4 + 4 + 1,     // first chunk's first_seq
            good.len() - CRC_TRAILER_LEN - 2, // footer total_insts
        ];
        for at in probes {
            let mut bad = good.clone();
            bad[at] ^= 0x10;
            assert!(
                matches!(
                    Trace::from_bytes(&bad),
                    Err(TraceError::FileChecksumMismatch)
                ),
                "flip at byte {at} was not rejected by the file checksum"
            );
        }
    }

    #[test]
    fn truncated_file_rejected() {
        let bytes = sample_trace().to_bytes();
        assert!(Trace::from_bytes(&bytes[..bytes.len() / 2]).is_err());
        assert!(Trace::from_bytes(&[]).is_err());
    }

    #[test]
    fn read_errors_carry_the_path_and_root_cause() {
        let dir = std::env::temp_dir().join(format!("arvi-file-err-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("x.arvitrace");
        let mut bytes = sample_trace().to_bytes();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();
        let err = Trace::read_from(&path).unwrap_err();
        assert!(err.to_string().contains("x.arvitrace"), "{err}");
        assert!(matches!(err.root(), TraceError::FileChecksumMismatch));
        assert!(err.is_corruption());
        let missing = Trace::read_from(&dir.join("missing.arvitrace")).unwrap_err();
        assert!(matches!(missing.root(), TraceError::Io(_)));
        assert!(!missing.is_corruption());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn chunk_payload_span_addresses_every_chunk() {
        let trace = sample_trace();
        let bytes = trace.to_bytes();
        for (i, info) in trace.chunks().iter().enumerate() {
            let (off, len) = chunk_payload_span(&bytes, i).expect("chunk located");
            assert_eq!(len, info.len as usize, "chunk {i} length");
            // Corrupting the located span must trip that chunk's CRC on
            // a payload-level verify (proving the span really is the
            // chunk's payload, not framing).
            let mut bad = bytes.clone();
            bad[off] ^= 0xFF;
            let reparsed = Trace::from_bytes(&bad);
            assert!(reparsed.is_err(), "flip inside chunk {i} accepted");
        }
        assert!(chunk_payload_span(&bytes, trace.chunk_count()).is_none());
        assert!(chunk_payload_span(b"short", 0).is_none());
    }
}

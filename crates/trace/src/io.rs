//! The injectable file I/O seam under the trace container.
//!
//! Everything that moves container bytes between memory and disk goes
//! through a [`TraceIo`] implementation. Production code uses [`StdIo`]
//! (atomic, durable writes); the fault-injection harness in `arvi-bench`
//! substitutes an implementation that deterministically corrupts,
//! truncates or fails specific operations, so every degradation path in
//! the sweep pipeline is exercised by real container bytes flowing
//! through the real load/verify/quarantine code — not by mocked errors.

use std::io::Write;
use std::path::{Path, PathBuf};

use crate::TraceError;

/// Extension appended to a trace file when it is quarantined: the file
/// failed verification and was moved aside (preserving the evidence)
/// so a healthy recording can take its place.
pub const QUARANTINE_SUFFIX: &str = "quarantined";

/// File operations the trace container performs, as an injectable seam.
///
/// All methods operate on whole container byte vectors — the container
/// is read and written in one piece, so the seam stays small and a
/// fault injector can corrupt bytes at exact offsets.
pub trait TraceIo: Sync {
    /// Reads the entire file at `path`.
    fn read(&self, path: &Path) -> Result<Vec<u8>, TraceError>;

    /// Writes `bytes` to `path` atomically: after this returns, `path`
    /// holds either its previous content or all of `bytes`, never a
    /// prefix. Implementations should also make the write durable
    /// (fsync) before committing it.
    fn write_atomic(&self, path: &Path, bytes: &[u8]) -> Result<(), TraceError>;

    /// Moves the file at `path` aside under [`QUARANTINE_SUFFIX`],
    /// returning the quarantine path. An existing quarantined file at
    /// the target is replaced (the newest failure is the interesting
    /// one).
    fn quarantine(&self, path: &Path) -> Result<PathBuf, TraceError> {
        let target = quarantine_path(path);
        std::fs::rename(path, &target).map_err(|e| TraceError::from(e).for_path(path))?;
        Ok(target)
    }
}

/// The quarantine sibling of `path` (`foo.arvitrace` →
/// `foo.arvitrace.quarantined`).
pub fn quarantine_path(path: &Path) -> PathBuf {
    let mut name = path.as_os_str().to_os_string();
    name.push(".");
    name.push(QUARANTINE_SUFFIX);
    PathBuf::from(name)
}

/// The production [`TraceIo`]: plain reads, atomic durable writes.
///
/// Writes go to a temporary sibling (`<name>.tmp.<pid>`), are fsynced,
/// and then renamed over the destination — a sweep killed mid-write
/// leaves either the old file or the new one, never a torn container
/// that would poison the next run's cache load.
#[derive(Debug, Default, Clone, Copy)]
pub struct StdIo;

impl TraceIo for StdIo {
    fn read(&self, path: &Path) -> Result<Vec<u8>, TraceError> {
        std::fs::read(path).map_err(|e| TraceError::from(e).for_path(path))
    }

    fn write_atomic(&self, path: &Path, bytes: &[u8]) -> Result<(), TraceError> {
        let tmp = tmp_sibling(path);
        let res = (|| -> Result<(), TraceError> {
            let mut f = std::fs::File::create(&tmp)?;
            f.write_all(bytes)?;
            // Durability before visibility: the rename must never
            // publish a file whose bytes are still in flight.
            f.sync_all()?;
            std::fs::rename(&tmp, path)?;
            Ok(())
        })();
        if res.is_err() {
            // Best effort: do not leave the temp file behind.
            std::fs::remove_file(&tmp).ok();
        }
        res.map_err(|e| e.for_path(path))
    }
}

fn tmp_sibling(path: &Path) -> PathBuf {
    let mut name = path.as_os_str().to_os_string();
    name.push(format!(".tmp.{}", std::process::id()));
    PathBuf::from(name)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("arvi-io-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn atomic_write_round_trips_and_cleans_temp() {
        let dir = temp_dir("atomic");
        let path = dir.join("t.arvitrace");
        StdIo.write_atomic(&path, b"first").unwrap();
        assert_eq!(StdIo.read(&path).unwrap(), b"first");
        StdIo.write_atomic(&path, b"second").unwrap();
        assert_eq!(StdIo.read(&path).unwrap(), b"second");
        // No temp droppings.
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name())
            .filter(|n| n.to_string_lossy().contains(".tmp."))
            .collect();
        assert!(leftovers.is_empty(), "{leftovers:?}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn quarantine_moves_the_file_aside() {
        let dir = temp_dir("quarantine");
        let path = dir.join("bad.arvitrace");
        std::fs::write(&path, b"corrupt").unwrap();
        let moved = StdIo.quarantine(&path).unwrap();
        assert!(!path.exists());
        assert!(moved.exists());
        assert!(moved.to_string_lossy().ends_with(".arvitrace.quarantined"));
        // A second quarantine of a fresh failure replaces the old one.
        std::fs::write(&path, b"corrupt again").unwrap();
        StdIo.quarantine(&path).unwrap();
        assert_eq!(std::fs::read(&moved).unwrap(), b"corrupt again");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn read_error_names_the_file() {
        let err = StdIo
            .read(Path::new("/nonexistent/nope.arvitrace"))
            .unwrap_err();
        assert!(err.to_string().contains("nope.arvitrace"), "{err}");
    }
}

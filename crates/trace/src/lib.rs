//! # arvi-trace
//!
//! Record-once / replay-many committed-instruction traces.
//!
//! The timing simulator (`arvi-sim`) is trace-driven by construction:
//! it consumes the committed [`DynInst`](arvi_isa::DynInst) stream and
//! models when instructions execute, while the functional outcome comes
//! from emulation. This crate makes that stream a first-class artifact:
//!
//! * [`TraceWriter`] / [`Trace::record`] capture the stream from
//!   [`arvi_isa::Emulator`] into a compact chunked binary encoding
//!   (per-field deltas + varints, ~5–7 bytes per instruction; see
//!   [`chunk`]).
//! * [`Trace`] holds the encoded recording immutably, so sweeps share
//!   one recording across all grid cells and worker threads via
//!   `Arc<Trace>`.
//! * [`TraceReader`] / [`TraceReplayer`] decode chunk-at-a-time into a
//!   reusable buffer (zero steady-state allocation) and can
//!   fast-forward over whole chunks via the index. `TraceReplayer`
//!   implements [`arvi_sim::InstSource`], so
//!   [`arvi_sim::simulate_source`] runs timing models directly off a
//!   recording — **bit-identically** to the live emulation it captured.
//! * [`Trace::write_to`] / [`Trace::read_from`] persist recordings in a
//!   versioned container with per-chunk CRC-32 checksums and a footer
//!   index ([`file`]); loading fully verifies the file.
//!
//! ```no_run
//! use std::sync::Arc;
//! use arvi_trace::{Trace, TraceReplayer};
//! use arvi_sim::{simulate_source, intern_name, SimParams, Depth, PredictorConfig};
//! use arvi_isa::Emulator;
//! use arvi_workloads::Benchmark;
//!
//! // Record once...
//! let emu = Emulator::new(Benchmark::M88ksim.program(42));
//! let trace = Arc::new(Trace::record(emu, 700_000, "m88ksim", 42));
//! // ...replay many: each cell gets its own cheap cursor.
//! for config in PredictorConfig::all() {
//!     let r = simulate_source(
//!         intern_name(trace.name()),
//!         TraceReplayer::new(Arc::clone(&trace)),
//!         SimParams::for_depth(Depth::D20),
//!         config,
//!         100_000,
//!         500_000,
//!     );
//!     println!("{config}: IPC {:.3}", r.ipc());
//! }
//! ```

pub mod chunk;
pub mod codec;
pub mod file;
pub mod io;
pub mod replay;
pub mod store;

pub use chunk::DEFAULT_CHUNK_INSTS;
pub use file::FORMAT_VERSION;
pub use io::{quarantine_path, StdIo, TraceIo, QUARANTINE_SUFFIX};
pub use replay::{TraceReader, TraceReplayer, REPLAY_PANIC_PREFIX};
pub use store::{ChunkInfo, Trace, TraceWriter};

use std::fmt;

/// Errors surfaced while encoding, decoding or loading traces.
#[derive(Debug)]
pub enum TraceError {
    /// An underlying I/O error.
    Io(std::io::Error),
    /// The file does not start (or end) with the trace magic.
    BadMagic,
    /// The file uses an unsupported format version.
    BadVersion(u32),
    /// Data ended before a complete record/structure was read.
    Truncated,
    /// A chunk payload did not match its recorded CRC-32.
    ChecksumMismatch {
        /// Index of the failing chunk.
        chunk: usize,
    },
    /// The container's whole-file CRC-32 did not match: corruption in
    /// the header, index or footer (chunk payloads are additionally
    /// covered per chunk).
    FileChecksumMismatch,
    /// Structurally invalid data (with a human-readable reason).
    Corrupt(&'static str),
    /// An error with the file it occurred on attached — the persistence
    /// path wraps every failure in this, so a sweep over dozens of
    /// cached traces reports *which* file failed and why instead of a
    /// bare "checksum mismatch".
    File {
        /// The file the operation failed on.
        path: std::path::PathBuf,
        /// The underlying failure.
        source: Box<TraceError>,
    },
    /// An injected fault (fault-injection harness only; never produced
    /// by production I/O).
    Injected(&'static str),
    /// A recording source ended before the requested window was
    /// covered (experiment workloads are expected to run indefinitely).
    SourceEnded {
        /// Instructions actually produced.
        at: u64,
        /// Instructions requested.
        need: u64,
    },
    /// A seek target beyond the end of the trace
    /// ([`TraceReader::seek_to_inst`]); the caller's sampling plan and
    /// the recording disagree about the trace length.
    SeekPastEnd {
        /// Requested instruction sequence number.
        seq: u64,
        /// Instructions the trace actually holds.
        len: u64,
    },
}

impl TraceError {
    pub(crate) fn corrupt(reason: &'static str) -> TraceError {
        TraceError::Corrupt(reason)
    }

    /// Wraps the error with the file it occurred on (idempotent: an
    /// already-wrapped error keeps its innermost path).
    pub fn for_path(self, path: &std::path::Path) -> TraceError {
        match self {
            TraceError::File { .. } => self,
            other => TraceError::File {
                path: path.to_path_buf(),
                source: Box::new(other),
            },
        }
    }

    /// The underlying error with any [`TraceError::File`] context
    /// stripped — what callers match on to classify a failure.
    pub fn root(&self) -> &TraceError {
        match self {
            TraceError::File { source, .. } => source.root(),
            other => other,
        }
    }

    /// Whether the root cause is damaged or unreadable container data
    /// (as opposed to an I/O error like a missing file): the condition
    /// under which a cached trace is quarantined rather than silently
    /// overwritten.
    pub fn is_corruption(&self) -> bool {
        matches!(
            self.root(),
            TraceError::BadMagic
                | TraceError::BadVersion(_)
                | TraceError::Truncated
                | TraceError::ChecksumMismatch { .. }
                | TraceError::FileChecksumMismatch
                | TraceError::Corrupt(_)
                | TraceError::Injected(_)
        )
    }
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::Io(e) => write!(f, "trace I/O error: {e}"),
            TraceError::BadMagic => write!(f, "not an arvi trace file (bad magic)"),
            TraceError::BadVersion(v) => write!(
                f,
                "unsupported trace format version {v} (this build reads version {FORMAT_VERSION})"
            ),
            TraceError::Truncated => write!(f, "trace data is truncated"),
            TraceError::ChecksumMismatch { chunk } => {
                write!(f, "chunk {chunk} failed its CRC-32 checksum")
            }
            TraceError::FileChecksumMismatch => {
                write!(f, "file failed its whole-container CRC-32 checksum")
            }
            TraceError::Corrupt(reason) => write!(f, "corrupt trace: {reason}"),
            TraceError::File { path, source } => {
                write!(f, "trace file {}: {source}", path.display())
            }
            TraceError::Injected(what) => write!(f, "injected fault: {what}"),
            TraceError::SourceEnded { at, need } => {
                write!(f, "source ended at instruction {at} of {need}")
            }
            TraceError::SeekPastEnd { seq, len } => {
                write!(
                    f,
                    "seek target {seq} is past the end of the trace ({len} instructions)"
                )
            }
        }
    }
}

impl std::error::Error for TraceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TraceError::Io(e) => Some(e),
            TraceError::File { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl From<std::io::Error> for TraceError {
    fn from(e: std::io::Error) -> TraceError {
        TraceError::Io(e)
    }
}

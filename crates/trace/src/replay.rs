//! Replay cursors: chunk-at-a-time decoding behind the simulator's
//! [`InstSource`] frontend trait.

use std::sync::Arc;

use arvi_isa::DynInst;
use arvi_sim::InstSource;

use crate::store::Trace;

/// Prefix of every panic message raised by replay cursors on a corrupt
/// chunk. File-loaded traces are fully verified at load and in-memory
/// recordings are trusted, so this firing means the bytes changed
/// *after* verification — a program bug or memory corruption, not an
/// input condition. The resilient sweep runner (`arvi-bench`) matches
/// on this prefix to classify such a panic as a trace failure rather
/// than a generic cell panic.
pub const REPLAY_PANIC_PREFIX: &str = "trace replay:";

#[cold]
fn corrupt_chunk_panic(chunk: usize, trace: &Trace, e: crate::TraceError) -> ! {
    panic!(
        "{REPLAY_PANIC_PREFIX} chunk {chunk} of trace {}: {e}",
        trace.name()
    )
}

/// Shared cursor logic over a trace, borrowed per call so it works for
/// both the borrowing [`TraceReader`] and the owning [`TraceReplayer`].
///
/// The decode buffer is reused across chunks: after the first chunk is
/// decoded, steady-state replay performs **zero heap allocations**
/// (chunks never exceed the writer's chunk capacity, so `clear` + push
/// stays within the buffer's existing capacity).
#[derive(Debug, Default)]
struct Cursor {
    /// Next chunk to decode.
    chunk: usize,
    /// Read position within `buf`.
    pos: usize,
    /// Decoded records of the current chunk (reused).
    buf: Vec<DynInst>,
}

impl Cursor {
    /// The next record, decoding the next chunk when the buffer drains.
    ///
    /// # Panics
    ///
    /// Panics on a corrupt chunk. File-loaded traces are fully verified
    /// by [`Trace::read_from`](crate::Trace::read_from) and in-memory
    /// recordings are trusted, so corruption here is a program bug, not
    /// an input condition.
    #[inline]
    fn next(&mut self, trace: &Trace) -> Option<DynInst> {
        loop {
            if let Some(&d) = self.buf.get(self.pos) {
                self.pos += 1;
                return Some(d);
            }
            if self.chunk >= trace.chunk_count() {
                return None;
            }
            trace
                .decode_chunk_trusted(self.chunk, &mut self.buf)
                .unwrap_or_else(|e| corrupt_chunk_panic(self.chunk, trace, e));
            self.chunk += 1;
            self.pos = 0;
        }
    }

    /// Fills `out` with the next records, decoding chunk-at-a-time and
    /// copying contiguous runs straight into the caller's buffer.
    /// Returns the number written (less than `out.len()` only at end of
    /// trace). Shares [`Cursor::next`]'s allocation discipline and panic
    /// conditions.
    fn fill(&mut self, trace: &Trace, out: &mut [DynInst]) -> usize {
        let mut n = 0;
        while n < out.len() {
            let buffered = self.buf.len() - self.pos;
            if buffered > 0 {
                let take = buffered.min(out.len() - n);
                out[n..n + take].copy_from_slice(&self.buf[self.pos..self.pos + take]);
                self.pos += take;
                n += take;
                continue;
            }
            if self.chunk >= trace.chunk_count() {
                break;
            }
            trace
                .decode_chunk_trusted(self.chunk, &mut self.buf)
                .unwrap_or_else(|e| corrupt_chunk_panic(self.chunk, trace, e));
            self.chunk += 1;
            self.pos = 0;
        }
        n
    }

    /// Advances the cursor by `n` records from its current position,
    /// skipping whole chunks via the index without decoding them.
    /// Returns the number of records actually skipped (less than `n`
    /// only at end of trace).
    fn fast_forward(&mut self, trace: &Trace, mut n: u64) -> u64 {
        let mut skipped = 0u64;
        // First drain what is already decoded.
        let buffered = (self.buf.len() - self.pos) as u64;
        let from_buf = buffered.min(n);
        self.pos += from_buf as usize;
        n -= from_buf;
        skipped += from_buf;
        // Then hop over whole chunks using only the index.
        while n > 0 {
            let Some(info) = trace.chunks().get(self.chunk) else {
                break;
            };
            if (info.count as u64) <= n {
                self.chunk += 1;
                n -= info.count as u64;
                skipped += info.count as u64;
                continue;
            }
            // Target lands inside this chunk: decode it and index in.
            trace
                .decode_chunk_trusted(self.chunk, &mut self.buf)
                .unwrap_or_else(|e| corrupt_chunk_panic(self.chunk, trace, e));
            self.chunk += 1;
            self.pos = n as usize;
            skipped += n;
            n = 0;
        }
        if n > 0 {
            // Ran off the end: leave the cursor exhausted.
            self.buf.clear();
            self.pos = 0;
        }
        skipped
    }

    /// Repositions the cursor so the next record read is the one with
    /// sequence number `seq`, using the chunk index to land directly on
    /// the containing chunk — no predecessor chunk is decoded, so a
    /// seek into a billion-instruction trace costs one binary search
    /// plus one chunk decode. Unlike [`Cursor::fast_forward`] this is
    /// absolute, not relative, and works regardless of the cursor's
    /// current position.
    fn seek_to_inst(&mut self, trace: &Trace, seq: u64) -> Result<(), crate::TraceError> {
        if seq >= trace.len() {
            return Err(crate::TraceError::SeekPastEnd {
                seq,
                len: trace.len(),
            });
        }
        // The containing chunk is the last one whose first_seq <= seq.
        let idx = trace.chunks().partition_point(|c| c.first_seq <= seq) - 1;
        trace
            .decode_chunk_trusted(idx, &mut self.buf)
            .unwrap_or_else(|e| corrupt_chunk_panic(idx, trace, e));
        self.chunk = idx + 1;
        self.pos = (seq - trace.chunks()[idx].first_seq) as usize;
        debug_assert!(
            self.pos < self.buf.len(),
            "index places {seq} in chunk {idx}"
        );
        Ok(())
    }
}

/// Borrowing reader over a [`Trace`], yielding records in order.
///
/// Decodes chunk-at-a-time into a reusable buffer; see [`Cursor`] for
/// the allocation discipline and panic conditions.
#[derive(Debug)]
pub struct TraceReader<'a> {
    trace: &'a Trace,
    cursor: Cursor,
}

impl<'a> TraceReader<'a> {
    /// A reader positioned at the first record.
    pub fn new(trace: &'a Trace) -> TraceReader<'a> {
        TraceReader {
            trace,
            cursor: Cursor::default(),
        }
    }

    /// Skips `n` records (whole chunks are skipped via the index, so
    /// fast-forwarding past a warmup prefix does not decode it).
    /// Returns the number actually skipped.
    pub fn fast_forward(&mut self, n: u64) -> u64 {
        self.cursor.fast_forward(self.trace, n)
    }

    /// Absolute seek: repositions the reader so the next record yielded
    /// is the one with sequence number `seq`. The footer index's
    /// `first_seq` column locates the containing chunk directly, so no
    /// prefix is decoded — the entry cost of a sampling unit anywhere
    /// in the trace is one binary search plus one chunk decode.
    /// Returns [`TraceError::SeekPastEnd`](crate::TraceError::SeekPastEnd)
    /// for a target at or beyond the end of the trace.
    ///
    /// Assumes the dense zero-based sequence numbering that
    /// [`Trace::record`](crate::Trace::record) produces (`seq` equals
    /// the record's position); hand-built traces with arbitrary `seq`
    /// fields have no meaningful position-by-seq mapping to seek in.
    pub fn seek_to_inst(&mut self, seq: u64) -> Result<(), crate::TraceError> {
        self.cursor.seek_to_inst(self.trace, seq)
    }
}

impl Iterator for TraceReader<'_> {
    type Item = DynInst;

    #[inline]
    fn next(&mut self) -> Option<DynInst> {
        self.cursor.next(self.trace)
    }
}

/// Owning replayer over a shared trace: the record-once / replay-many
/// [`InstSource`]. Clones of the `Arc` are cheap; each replayer carries
/// only its own cursor and decode buffer, so any number of machines (on
/// any number of threads) can replay one recording concurrently.
#[derive(Debug)]
pub struct TraceReplayer {
    trace: Arc<Trace>,
    cursor: Cursor,
}

impl TraceReplayer {
    /// A replayer positioned at the first record.
    pub fn new(trace: Arc<Trace>) -> TraceReplayer {
        TraceReplayer {
            trace,
            cursor: Cursor::default(),
        }
    }

    /// The shared trace being replayed.
    pub fn trace(&self) -> &Arc<Trace> {
        &self.trace
    }

    /// Skips `n` records via the chunk index (see
    /// [`TraceReader::fast_forward`]).
    pub fn fast_forward(&mut self, n: u64) -> u64 {
        self.cursor.fast_forward(&self.trace, n)
    }

    /// Absolute seek via the chunk index (see
    /// [`TraceReader::seek_to_inst`]).
    pub fn seek_to_inst(&mut self, seq: u64) -> Result<(), crate::TraceError> {
        self.cursor.seek_to_inst(&self.trace, seq)
    }
}

impl InstSource for TraceReplayer {
    #[inline]
    fn next_inst(&mut self) -> Option<DynInst> {
        self.cursor.next(&self.trace)
    }

    /// Block decode: whole chunks are copied into the caller's buffer in
    /// contiguous runs, amortizing the per-record cursor bounds checks
    /// the one-at-a-time default pays.
    #[inline]
    fn fill(&mut self, out: &mut [DynInst]) -> usize {
        self.cursor.fill(&self.trace, out)
    }
}

impl Iterator for TraceReplayer {
    type Item = DynInst;

    #[inline]
    fn next(&mut self) -> Option<DynInst> {
        self.cursor.next(&self.trace)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::TraceWriter;
    use arvi_isa::Emulator;
    use arvi_workloads::Benchmark;

    fn small_chunk_trace(n: usize) -> Trace {
        let emu = Emulator::new(Benchmark::M88ksim.program(11));
        let mut w = TraceWriter::new("m88ksim", 11).with_chunk_insts(64);
        for d in emu.take(n) {
            w.push(d);
        }
        w.finish()
    }

    #[test]
    fn reader_replays_the_recorded_stream() {
        let reference: Vec<DynInst> = Emulator::new(Benchmark::M88ksim.program(11))
            .take(1_000)
            .collect();
        let trace = small_chunk_trace(1_000);
        let replayed: Vec<DynInst> = TraceReader::new(&trace).collect();
        assert_eq!(reference, replayed);
    }

    #[test]
    fn replayer_is_shareable_across_threads() {
        let trace = Arc::new(small_chunk_trace(500));
        let reference: Vec<DynInst> = TraceReader::new(&trace).collect();
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let t = Arc::clone(&trace);
                let want = reference.clone();
                std::thread::spawn(move || {
                    let got: Vec<DynInst> = TraceReplayer::new(t).collect();
                    assert_eq!(got, want);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn fill_matches_plain_iteration() {
        use arvi_sim::InstSource;
        let trace = Arc::new(small_chunk_trace(1_000));
        let reference: Vec<DynInst> = TraceReader::new(&trace).collect();
        // Odd buffer sizes straddle chunk boundaries (chunks are 64).
        for chunk in [1usize, 7, 63, 64, 65, 200] {
            let mut r = TraceReplayer::new(Arc::clone(&trace));
            let mut buf = vec![reference[0]; chunk];
            let mut got: Vec<DynInst> = Vec::new();
            loop {
                let n = r.fill(&mut buf);
                if n == 0 {
                    break;
                }
                got.extend_from_slice(&buf[..n]);
            }
            assert_eq!(got, reference, "fill size {chunk}");
        }
    }

    #[test]
    fn fill_interleaves_with_next() {
        use arvi_sim::InstSource;
        let trace = Arc::new(small_chunk_trace(300));
        let reference: Vec<DynInst> = TraceReader::new(&trace).collect();
        let mut r = TraceReplayer::new(Arc::clone(&trace));
        let mut got: Vec<DynInst> = Vec::new();
        let mut buf = vec![reference[0]; 50];
        while got.len() < reference.len() {
            // Mixed pulls: a few singles, then a block.
            for _ in 0..3 {
                if let Some(d) = r.next_inst() {
                    got.push(d);
                }
            }
            let n = r.fill(&mut buf);
            got.extend_from_slice(&buf[..n]);
            if n == 0 && r.next_inst().is_none() {
                break;
            }
        }
        assert_eq!(got, reference);
    }

    #[test]
    fn fast_forward_matches_plain_iteration() {
        let trace = small_chunk_trace(1_000);
        for skip in [0u64, 1, 63, 64, 65, 130, 999, 1_000, 5_000] {
            let mut r = TraceReader::new(&trace);
            let skipped = r.fast_forward(skip);
            assert_eq!(skipped, skip.min(1_000));
            let mut plain = TraceReader::new(&trace);
            for _ in 0..skip {
                plain.next();
            }
            assert_eq!(r.next(), plain.next(), "after skipping {skip}");
        }
    }

    #[test]
    fn fast_forward_after_partial_read() {
        let trace = small_chunk_trace(300);
        let mut r = TraceReader::new(&trace);
        for _ in 0..10 {
            r.next();
        }
        r.fast_forward(100);
        let mut plain = TraceReader::new(&trace);
        plain.fast_forward(110);
        assert_eq!(r.next(), plain.next());
    }

    /// Pinned chunk-boundary regression: seek-then-decode is
    /// bit-identical to sequential decode at the first and last seq of
    /// a chunk, at seq 0, and everywhere around the boundaries; a seek
    /// at or past the end is an error, not silent exhaustion.
    #[test]
    fn seek_to_inst_matches_sequential_decode_at_chunk_boundaries() {
        let trace = small_chunk_trace(1_000);
        let reference: Vec<DynInst> = TraceReader::new(&trace).collect();
        // Chunks are 64 records: cover first/last seq of several chunks
        // plus seq 0 and the final record.
        for seq in [0u64, 1, 63, 64, 65, 127, 128, 191, 192, 640, 959, 960, 999] {
            let mut r = TraceReader::new(&trace);
            r.seek_to_inst(seq).expect("in-range seek");
            let rest: Vec<DynInst> = r.collect();
            assert_eq!(
                rest,
                reference[seq as usize..],
                "tail after seeking to {seq}"
            );
        }
        // Past-EOF (and exactly-EOF) seeks are errors.
        for seq in [1_000u64, 1_001, u64::MAX] {
            let mut r = TraceReader::new(&trace);
            match r.seek_to_inst(seq) {
                Err(crate::TraceError::SeekPastEnd { seq: s, len }) => {
                    assert_eq!((s, len), (seq, 1_000));
                }
                other => panic!("seek to {seq}: expected SeekPastEnd, got {other:?}"),
            }
        }
    }

    #[test]
    fn seek_is_absolute_regardless_of_cursor_position() {
        let trace = small_chunk_trace(500);
        let reference: Vec<DynInst> = TraceReader::new(&trace).collect();
        let mut r = TraceReader::new(&trace);
        // Read ahead, then seek backwards and forwards.
        for _ in 0..300 {
            r.next();
        }
        r.seek_to_inst(10).unwrap();
        assert_eq!(r.next(), Some(reference[10]));
        r.seek_to_inst(450).unwrap();
        assert_eq!(r.next(), Some(reference[450]));
        // Replayer exposes the same seek.
        let shared = Arc::new(trace);
        let mut rp = TraceReplayer::new(Arc::clone(&shared));
        rp.fast_forward(200);
        rp.seek_to_inst(64).unwrap();
        assert_eq!(rp.next(), Some(reference[64]));
    }

    proptest::proptest! {
        #![proptest_config(proptest::ProptestConfig::with_cases(64))]

        /// Random seek targets over random trace lengths and chunk
        /// capacities: the record under the cursor after a seek always
        /// equals the sequentially decoded one.
        #[test]
        fn seek_to_inst_matches_sequential_decode_everywhere(
            len in 1..600usize,
            chunk_insts in 1..97usize,
            frac in 0..1_000u64,
        ) {
            let emu = Emulator::new(Benchmark::M88ksim.program(11));
            let mut w = TraceWriter::new("m88ksim", 11).with_chunk_insts(chunk_insts);
            for d in emu.take(len) {
                w.push(d);
            }
            let trace = w.finish();
            let reference: Vec<DynInst> = TraceReader::new(&trace).collect();
            let seq = frac * len as u64 / 1_000;
            let mut r = TraceReader::new(&trace);
            r.seek_to_inst(seq).expect("in-range seek");
            proptest::prop_assert_eq!(r.next(), Some(reference[seq as usize]));
        }
    }
}

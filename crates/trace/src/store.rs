//! The in-memory trace: encoded chunk payloads plus the chunk index.

use arvi_isa::DynInst;

use crate::chunk::{decode_chunk, encode_chunk, DEFAULT_CHUNK_INSTS};
use crate::codec::crc32;
use crate::TraceError;

/// Index entry for one encoded chunk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChunkInfo {
    /// Byte offset of the chunk payload inside [`Trace::data`].
    pub offset: u64,
    /// Payload length in bytes.
    pub len: u32,
    /// Number of instructions in the chunk.
    pub count: u32,
    /// `seq` of the chunk's first instruction (decode context seed; also
    /// lets a reader seek without decoding predecessors).
    pub first_seq: u64,
    /// CRC-32 of the payload.
    pub crc: u32,
}

/// A recorded committed-instruction trace, held encoded in memory.
///
/// A `Trace` is immutable once built, so sweeps wrap it in an
/// [`Arc`](std::sync::Arc) and share one recording read-only across all
/// grid cells and worker threads; every replayer keeps only a private
/// decode buffer. Produced by [`TraceWriter`], `Trace::record`, or
/// [`Trace::read_from`](crate::file) (the on-disk form).
#[derive(Debug, Clone)]
pub struct Trace {
    pub(crate) name: String,
    pub(crate) seed: u64,
    pub(crate) total: u64,
    pub(crate) data: Vec<u8>,
    pub(crate) chunks: Vec<ChunkInfo>,
}

impl Trace {
    /// Records `n` instructions from `source` (a live emulator, usually).
    ///
    /// # Panics
    ///
    /// Panics if the source ends before `n` records — recorded windows
    /// must be fully covered (experiment workloads run indefinitely).
    pub fn record<I: Iterator<Item = DynInst>>(
        source: I,
        n: u64,
        name: impl Into<String>,
        seed: u64,
    ) -> Trace {
        match Trace::try_record(source, n, name, seed) {
            Ok(t) => t,
            Err(e) => panic!("{e}"),
        }
    }

    /// [`Trace::record`] returning [`TraceError::SourceEnded`] instead
    /// of panicking when the source runs dry — the resilient sweep path
    /// records a degradation instead of taking the grid down.
    pub fn try_record<I: Iterator<Item = DynInst>>(
        mut source: I,
        n: u64,
        name: impl Into<String>,
        seed: u64,
    ) -> Result<Trace, TraceError> {
        let mut w = TraceWriter::new(name, seed);
        for i in 0..n {
            let d = source
                .next()
                .ok_or(TraceError::SourceEnded { at: i, need: n })?;
            w.push(d);
        }
        Ok(w.finish())
    }

    /// The recorded workload's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The workload input seed the recording used.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Total recorded instructions.
    pub fn len(&self) -> u64 {
        self.total
    }

    /// Whether the trace holds no instructions.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Number of encoded chunks.
    pub fn chunk_count(&self) -> usize {
        self.chunks.len()
    }

    /// Encoded payload size in bytes (excludes index and file framing).
    pub fn encoded_bytes(&self) -> usize {
        self.data.len()
    }

    /// The chunk index.
    pub fn chunks(&self) -> &[ChunkInfo] {
        &self.chunks
    }

    pub(crate) fn chunk_payload(&self, info: &ChunkInfo) -> Result<&[u8], TraceError> {
        let start = info.offset as usize;
        let end = start + info.len as usize;
        self.data.get(start..end).ok_or(TraceError::Truncated)
    }

    /// Checksums and decodes chunk `idx` into `out` (cleared first; its
    /// capacity is reused across calls).
    pub fn decode_chunk_into(&self, idx: usize, out: &mut Vec<DynInst>) -> Result<(), TraceError> {
        self.decode_chunk_impl(idx, out, true)
    }

    /// Decode without re-checksumming: the replay hot path. Every trace
    /// was either just recorded in this process or fully verified by
    /// [`Trace::read_from`], so repeated replays of the immutable
    /// in-memory bytes do not pay the CRC again (the structural decode
    /// checks still run).
    pub(crate) fn decode_chunk_trusted(
        &self,
        idx: usize,
        out: &mut Vec<DynInst>,
    ) -> Result<(), TraceError> {
        self.decode_chunk_impl(idx, out, false)
    }

    fn decode_chunk_impl(
        &self,
        idx: usize,
        out: &mut Vec<DynInst>,
        checksum: bool,
    ) -> Result<(), TraceError> {
        let info = self
            .chunks
            .get(idx)
            .ok_or_else(|| TraceError::corrupt("chunk index out of range"))?;
        let payload = self.chunk_payload(info)?;
        if checksum && crc32(payload) != info.crc {
            return Err(TraceError::ChecksumMismatch { chunk: idx });
        }
        out.clear();
        decode_chunk(payload, info.count as usize, info.first_seq, out)
    }

    /// Fully validates the trace: every chunk checksum, every record
    /// decodable, and the index count consistent with the payload.
    pub fn verify(&self) -> Result<(), TraceError> {
        let mut buf = Vec::new();
        let mut total = 0u64;
        for idx in 0..self.chunks.len() {
            self.decode_chunk_into(idx, &mut buf)?;
            total += buf.len() as u64;
        }
        if total != self.total {
            return Err(TraceError::corrupt("chunk counts disagree with total"));
        }
        Ok(())
    }
}

/// Streaming encoder producing a [`Trace`].
#[derive(Debug)]
pub struct TraceWriter {
    name: String,
    seed: u64,
    chunk_insts: usize,
    pending: Vec<DynInst>,
    data: Vec<u8>,
    chunks: Vec<ChunkInfo>,
    total: u64,
}

impl TraceWriter {
    /// Creates a writer with the default chunk capacity.
    pub fn new(name: impl Into<String>, seed: u64) -> TraceWriter {
        TraceWriter {
            name: name.into(),
            seed,
            chunk_insts: DEFAULT_CHUNK_INSTS,
            pending: Vec::new(),
            data: Vec::new(),
            chunks: Vec::new(),
            total: 0,
        }
    }

    /// Overrides the chunk capacity (min 1); small chunks are useful in
    /// tests to exercise chunk-boundary behavior.
    pub fn with_chunk_insts(mut self, n: usize) -> TraceWriter {
        self.chunk_insts = n.max(1);
        self
    }

    /// Appends one record.
    pub fn push(&mut self, d: DynInst) {
        self.pending.push(d);
        self.total += 1;
        if self.pending.len() >= self.chunk_insts {
            self.seal_chunk();
        }
    }

    fn seal_chunk(&mut self) {
        if self.pending.is_empty() {
            return;
        }
        let offset = self.data.len() as u64;
        encode_chunk(&self.pending, &mut self.data);
        let payload = &self.data[offset as usize..];
        self.chunks.push(ChunkInfo {
            offset,
            len: payload.len() as u32,
            count: self.pending.len() as u32,
            first_seq: self.pending[0].seq,
            crc: crc32(payload),
        });
        self.pending.clear();
    }

    /// Seals the final chunk and returns the finished trace.
    pub fn finish(mut self) -> Trace {
        self.seal_chunk();
        Trace {
            name: self.name,
            seed: self.seed,
            total: self.total,
            data: self.data,
            chunks: self.chunks,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use arvi_isa::Emulator;
    use arvi_workloads::Benchmark;

    #[test]
    fn record_chunks_and_verifies() {
        let emu = Emulator::new(Benchmark::Compress.program(3));
        let trace = Trace::record(emu, 10_000, "compress", 3);
        assert_eq!(trace.len(), 10_000);
        assert_eq!(
            trace.chunk_count(),
            10_000usize.div_ceil(DEFAULT_CHUNK_INSTS)
        );
        trace.verify().unwrap();
        // Compact: the whole point of the delta+varint encoding.
        assert!(trace.encoded_bytes() < 10_000 * 10);
    }

    #[test]
    fn small_chunks_cover_all_records() {
        let emu = Emulator::new(Benchmark::Li.program(9));
        let mut w = TraceWriter::new("li", 9).with_chunk_insts(7);
        for d in emu.take(100) {
            w.push(d);
        }
        let trace = w.finish();
        assert_eq!(trace.len(), 100);
        assert_eq!(trace.chunk_count(), 100usize.div_ceil(7));
        trace.verify().unwrap();
        let mut buf = Vec::new();
        trace.decode_chunk_into(3, &mut buf).unwrap();
        assert_eq!(buf.len(), 7);
        assert_eq!(buf[0].seq, trace.chunks()[3].first_seq);
    }

    #[test]
    fn flipped_payload_byte_fails_checksum() {
        let emu = Emulator::new(Benchmark::Go.program(5));
        let mut trace = Trace::record(emu, 500, "go", 5);
        let mid = trace.data.len() / 2;
        trace.data[mid] ^= 0x40;
        assert!(matches!(
            trace.verify(),
            Err(TraceError::ChecksumMismatch { .. })
        ));
    }
}

//! Shared program-construction helpers for the benchmark models.

use arvi_isa::{AluOp, Cond, ProgramBuilder, Reg};

/// A bump allocator for the workload's data segment.
///
/// Regions are 64-byte aligned so unrelated structures never share a cache
/// line in the timing simulator.
#[derive(Debug, Clone)]
pub struct Layout {
    next: u64,
}

impl Layout {
    /// Creates a layout starting at the conventional data base (64 KiB).
    pub fn new() -> Layout {
        Layout { next: 0x1_0000 }
    }

    /// Reserves `words` 8-byte words and returns the region's byte address.
    pub fn alloc(&mut self, words: usize) -> u64 {
        let addr = self.next;
        self.next += (words as u64) * 8;
        self.next = (self.next + 63) & !63;
        addr
    }
}

impl Default for Layout {
    fn default() -> Layout {
        Layout::new()
    }
}

/// Emits a memory-resident cyclic cursor advance:
///
/// ```text
/// idx       = mem[slot]            (load)
/// value_reg = mem[base + idx*8]    (load)
/// idx'      = (idx + 1) & mask
/// mem[slot] = idx'
/// ```
///
/// Routing the induction variable through memory matters: it keeps DDT
/// register chains shallow (register dependence chains terminate at the
/// cursor load rather than closing over every prior iteration's
/// increment), which is how real pointer-walking code behaves.
///
/// Clobbers `tmp1` and `tmp2`.
pub fn emit_stream_next(
    b: &mut ProgramBuilder,
    slot: u64,
    base_reg: Reg,
    mask: i64,
    value_reg: Reg,
    tmp1: Reg,
    tmp2: Reg,
) {
    b.li(tmp2, slot as i64);
    b.load(tmp1, tmp2, 0); // idx
    b.alu_imm(AluOp::Sll, value_reg, tmp1, 3);
    b.alu(AluOp::Add, value_reg, base_reg, value_reg);
    b.load(value_reg, value_reg, 0); // value
    b.alu_imm(AluOp::Add, tmp1, tmp1, 1);
    b.alu_imm(AluOp::And, tmp1, tmp1, mask);
    b.store(tmp1, tmp2, 0);
}

/// Emits a short, highly predictable counted loop of `count` iterations
/// doing token ALU work — the "easy" branch population that dilutes the
/// hard branches, as real integer codes do.
///
/// Clobbers `counter` and `acc`.
pub fn emit_counted_loop(b: &mut ProgramBuilder, count: i64, counter: Reg, acc: Reg) {
    b.li(counter, count);
    let head = b.here();
    b.alu(AluOp::Add, acc, acc, counter);
    b.alu_imm(AluOp::Xor, acc, acc, 0x2D);
    b.alu_imm(AluOp::Sub, counter, counter, 1);
    b.branch(Cond::Ne, counter, Reg::ZERO, head);
}

/// Emits `n` heavily biased guard branches testing distinct bits of
/// `flags_reg`; each skips a token ALU op when its bit is clear. With a
/// flags source that is almost always zero these predict near-perfectly —
/// the vortex/gcc-style validation-check population.
///
/// Clobbers `tmp`.
pub fn emit_biased_guards(b: &mut ProgramBuilder, n: usize, flags_reg: Reg, tmp: Reg, acc: Reg) {
    for i in 0..n {
        b.alu_imm(AluOp::Srl, tmp, flags_reg, i as i64);
        b.alu_imm(AluOp::And, tmp, tmp, 1);
        let skip = b.label();
        b.branch_to_label(Cond::Eq, tmp, Reg::ZERO, skip);
        b.alu_imm(AluOp::Add, acc, acc, (i + 1) as i64);
        b.bind(skip);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use arvi_isa::{regs::*, Emulator};

    #[test]
    fn layout_is_aligned_and_disjoint() {
        let mut l = Layout::new();
        let a = l.alloc(3);
        let b = l.alloc(10);
        let c = l.alloc(1);
        assert_eq!(a % 64, 0);
        assert_eq!(b % 64, 0);
        assert_eq!(c % 64, 0);
        assert!(b >= a + 24);
        assert!(c >= b + 80);
    }

    #[test]
    fn stream_next_cycles_through_values() {
        let mut l = Layout::new();
        let mut b = ProgramBuilder::new();
        let slot = l.alloc(1);
        let base = l.alloc(4);
        for (i, v) in [10u64, 20, 30, 40].iter().enumerate() {
            b.data(base + (i as u64) * 8, *v);
        }
        b.li(S0, base as i64);
        for _ in 0..6 {
            emit_stream_next(&mut b, slot, S0, 3, A0, T0, T1);
        }
        b.halt();
        let mut emu = Emulator::new(b.build());
        let vals: Vec<u64> = emu
            .by_ref()
            .filter(|d| d.is_load() && d.dest == Some(A0))
            .map(|d| d.result)
            .collect();
        assert_eq!(vals, vec![10, 20, 30, 40, 10, 20]);
        // After 6 advances the cursor wrapped: 6 & 3 == 2.
        assert_eq!(emu.memory().read(slot), 2);
    }

    #[test]
    fn counted_loop_iterates_exactly() {
        let mut b = ProgramBuilder::new();
        emit_counted_loop(&mut b, 5, T0, T1);
        b.halt();
        let trace: Vec<_> = Emulator::new(b.build()).collect();
        let branches = trace.iter().filter(|d| d.is_branch()).count();
        assert_eq!(branches, 5);
    }

    #[test]
    fn biased_guards_follow_flag_bits() {
        let mut b = ProgramBuilder::new();
        b.li(S0, 0b101);
        emit_biased_guards(&mut b, 3, S0, T0, T1);
        b.halt();
        let trace: Vec<_> = Emulator::new(b.build()).collect();
        let taken: Vec<bool> = trace
            .iter()
            .filter(|d| d.is_branch())
            .map(|d| d.branch.unwrap().taken)
            .collect();
        // Guard branch skips when bit is clear: bits 101 -> skip pattern NTN.
        assert_eq!(taken, vec![false, true, false]);
    }
}

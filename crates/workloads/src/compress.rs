//! The compress model — LZW-style dictionary probing.
//!
//! The hot loop of SPEC95 compress hashes a (prefix, char) pair into a
//! table, branching on hit / free / collision. Hit-versus-miss is exactly
//! determined by the pair's value and the (slowly evolving) table state —
//! input n-gram locality keeps the pair working set small, which is what
//! ARVI's value-hashed index exploits; outcome *history* is much noisier,
//! which holds the hybrid near its paper accuracy (~90.5%).
//!
//! Periodic table resets model compress's block restarts and keep the
//! dictionary from saturating.

use crate::common::{emit_biased_guards, emit_stream_next, Layout};
use crate::data;
use arvi_isa::{regs::*, AluOp, Cond, Program, ProgramBuilder, Reg};

/// Benchmark name.
pub const NAME: &str = "compress";

const HSIZE: u64 = 512;
const INPUT_LEN: usize = 4096;
const ALPHABET: usize = 48;
const RESET_MASK: i64 = 8191;

/// Builds the compress model program.
pub fn program(seed: u64) -> Program {
    let mut rng = data::rng(seed ^ 0x636f_6d70);
    let mut b = ProgramBuilder::new();
    let mut l = Layout::new();

    // Byte stream with strong n-gram locality.
    let input = data::markov_stream(&mut rng, ALPHABET, INPUT_LEN, 0.85);
    let input_addr = l.alloc(INPUT_LEN);
    for (i, &c) in input.iter().enumerate() {
        b.data(input_addr + (i as u64) * 8, c + 1); // nonzero codes
    }
    let htab_addr = l.alloc(HSIZE as usize);
    let codetab_addr = l.alloc(HSIZE as usize);
    let cursor = l.alloc(1);
    let stats = l.alloc(1);
    b.data(cursor, 1);

    // S0 = input base, S1 = htab base, S2 = codetab base, S3 = prefix,
    // S4 = free-code counter, S5 = accumulator, S6 = iteration counter,
    // A0 = current symbol (software-pipelined one iteration ahead: real
    // compress reads its input through a buffer filled long before the
    // hash probe, so the symbol value has written back by probe time).
    b.li(S0, input_addr as i64);
    b.li(S1, htab_addr as i64);
    b.li(S2, codetab_addr as i64);
    b.li(S3, 1);
    b.li(S4, 256);
    b.li(S7, stats as i64);
    b.li(A0, (input[0] + 1) as i64);

    let outer = b.here();

    // fcode = (prefix << 6) + c ; h = fcode % HSIZE
    b.alu_imm(AluOp::Sll, T4, S3, 6);
    b.alu(AluOp::Add, T4, T4, A0); // fcode
    b.alu_imm(AluOp::Rem, T5, T4, HSIZE as i64);
    b.alu_imm(AluOp::Sll, T5, T5, 3);
    b.alu(AluOp::Add, T5, S1, T5); // &htab[h]
    b.load(T6, T5, 0); // entry

    let hit = b.label();
    let free = b.label();
    let after = b.label();
    // The star branches: hit/free/collision on the probed entry.
    b.branch_to_label(Cond::Eq, T6, T4, hit);
    b.branch_to_label(Cond::Eq, T6, Reg::ZERO, free);
    // Collision: secondary probe (one displacement), else give up.
    b.alu_imm(AluOp::Add, T5, T5, 8 * 7);
    b.alu_imm(AluOp::Rem, T7, T5, (HSIZE * 8) as i64);
    b.alu(AluOp::Add, T7, S1, T7);
    b.load(T6, T7, 0);
    let free2 = b.label();
    b.branch_to_label(Cond::Eq, T6, Reg::ZERO, free2);
    b.mv(S3, A0); // give up: restart prefix at c
    b.jump_to_label(after);
    b.bind(free2);
    b.store(T4, T7, 0);
    b.mv(S3, A0);
    b.jump_to_label(after);

    b.bind(free);
    // Insert: htab[h] = fcode; codetab[h] = nextcode++; prefix = c.
    b.store(T4, T5, 0);
    b.alu(AluOp::Sub, T8, T5, S1);
    b.alu(AluOp::Add, T8, S2, T8);
    b.store(S4, T8, 0);
    b.alu_imm(AluOp::Add, S4, S4, 1);
    b.mv(S3, A0);
    b.jump_to_label(after);

    b.bind(hit);
    // prefix = codetab[h] & 511.
    b.alu(AluOp::Sub, T8, T5, S1);
    b.alu(AluOp::Add, T8, S2, T8);
    b.load(S3, T8, 0);
    b.alu_imm(AluOp::And, S3, S3, 511);

    b.bind(after);
    // Output bookkeeping: biased guard population.
    b.alu(AluOp::Add, S5, S5, S3);
    emit_biased_guards(&mut b, 3, Reg::ZERO, T9, S5);
    b.store(S5, S7, 0);

    // Periodic dictionary reset (compress block restart): a long,
    // perfectly predictable store loop.
    b.alu_imm(AluOp::Add, S6, S6, 1);
    b.alu_imm(AluOp::And, T9, S6, RESET_MASK);
    let no_reset = b.label();
    b.branch_to_label(Cond::Ne, T9, Reg::ZERO, no_reset);
    b.li(T10, HSIZE as i64);
    b.mv(T11, S1);
    let clear = b.here();
    b.store(Reg::ZERO, T11, 0);
    b.alu_imm(AluOp::Add, T11, T11, 8);
    b.alu_imm(AluOp::Sub, T10, T10, 1);
    b.branch(Cond::Ne, T10, Reg::ZERO, clear);
    b.li(S4, 256);
    b.bind(no_reset);
    // Prefetch the next symbol for the next iteration (gives its value a
    // full iteration to write back before the next probe's prediction).
    emit_stream_next(&mut b, cursor, S0, (INPUT_LEN - 1) as i64, A0, T2, T3);
    b.jump(outer);

    b.build().with_name(NAME)
}

#[cfg(test)]
mod tests {
    use super::*;
    use arvi_isa::Emulator;

    #[test]
    fn runs_forever_and_is_deterministic() {
        let a: Vec<_> = Emulator::new(program(1)).take(30_000).collect();
        let b: Vec<_> = Emulator::new(program(1)).take(30_000).collect();
        assert_eq!(a.len(), 30_000);
        assert_eq!(a, b);
    }

    #[test]
    fn probe_branches_see_both_outcomes() {
        // The hit branch (`beq T6, T4`) must be genuinely bimodal — a
        // dictionary that always hits or always misses would be trivially
        // predictable and out of character.
        let t: Vec<_> = Emulator::new(program(2)).take(200_000).collect();
        let (mut taken, mut not) = (0u64, 0u64);
        for d in &t {
            if d.is_branch() && d.srcs == [Some(T6), Some(T4)] {
                if d.branch.unwrap().taken {
                    taken += 1;
                } else {
                    not += 1;
                }
            }
        }
        assert!(taken > 100, "hits {taken}");
        assert!(not > 100, "misses {not}");
    }

    #[test]
    fn dictionary_resets_occur() {
        // Zero-stores into the hash table (base region) mark resets.
        let prog = program(3);
        let t: Vec<_> = Emulator::new(prog).take(400_000).collect();
        let clears = t
            .iter()
            .filter(|d| d.is_store() && d.srcs[1].is_none())
            .count();
        assert!(clears >= HSIZE as usize, "clears {clears}");
    }

    #[test]
    fn instruction_mix_is_realistic() {
        let t: Vec<_> = Emulator::new(program(4)).take(50_000).collect();
        let branches = t.iter().filter(|d| d.is_branch()).count() as f64 / t.len() as f64;
        let loads = t.iter().filter(|d| d.is_load()).count() as f64 / t.len() as f64;
        assert!((0.08..0.35).contains(&branches), "branch frac {branches}");
        assert!((0.05..0.40).contains(&loads), "load frac {loads}");
    }
}

//! Seeded input-data generators.
//!
//! All generators take explicit seeds and are deterministic, so every
//! workload trace is exactly reproducible (the property the paper gets
//! from fixed SPEC95 reference inputs).

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Creates the deterministic RNG used throughout the workloads.
pub fn rng(seed: u64) -> SmallRng {
    SmallRng::seed_from_u64(seed)
}

/// Samples `n` items from `universe` with a Zipf-like skew: item at rank
/// `r` has weight `1 / (r + 1)^skew`. Models hot/cold key distributions
/// (hash lookups, token streams).
///
/// # Panics
///
/// Panics if `universe` is empty or `skew` is negative.
pub fn zipf_stream(rng: &mut SmallRng, universe: &[u64], n: usize, skew: f64) -> Vec<u64> {
    assert!(!universe.is_empty(), "empty universe");
    assert!(skew >= 0.0, "negative skew");
    let weights: Vec<f64> = (0..universe.len())
        .map(|r| 1.0 / ((r + 1) as f64).powf(skew))
        .collect();
    let total: f64 = weights.iter().sum();
    let mut cumulative = Vec::with_capacity(weights.len());
    let mut acc = 0.0;
    for w in &weights {
        acc += w / total;
        cumulative.push(acc);
    }
    (0..n)
        .map(|_| {
            let x: f64 = rng.gen();
            let idx = cumulative.partition_point(|&c| c < x);
            universe[idx.min(universe.len() - 1)]
        })
        .collect()
}

/// Generates a first-order Markov symbol stream over `alphabet` symbols.
/// Each state strongly prefers `locality` successor states (probability
/// `sharpness`), with the remainder uniform — models the byte/token
/// locality real inputs exhibit (compress n-grams, parser token runs).
///
/// # Panics
///
/// Panics if `alphabet` is zero or `sharpness` is outside `[0, 1]`.
pub fn markov_stream(rng: &mut SmallRng, alphabet: usize, n: usize, sharpness: f64) -> Vec<u64> {
    assert!(alphabet > 0, "empty alphabet");
    assert!((0.0..=1.0).contains(&sharpness), "sharpness out of range");
    // Two preferred successors per state.
    let succ: Vec<[usize; 2]> = (0..alphabet)
        .map(|_| [rng.gen_range(0..alphabet), rng.gen_range(0..alphabet)])
        .collect();
    let mut state = 0usize;
    (0..n)
        .map(|_| {
            let x: f64 = rng.gen();
            state = if x < sharpness / 2.0 {
                succ[state][0]
            } else if x < sharpness {
                succ[state][1]
            } else {
                rng.gen_range(0..alphabet)
            };
            state as u64
        })
        .collect()
}

/// `n` uniform values in `[lo, hi)`.
///
/// # Panics
///
/// Panics if `lo >= hi`.
pub fn uniform_stream(rng: &mut SmallRng, n: usize, lo: u64, hi: u64) -> Vec<u64> {
    assert!(lo < hi, "empty range");
    (0..n).map(|_| rng.gen_range(lo..hi)).collect()
}

/// `n` distinct values drawn from `[lo, hi)`.
///
/// # Panics
///
/// Panics if the range cannot supply `n` distinct values.
pub fn distinct_values(rng: &mut SmallRng, n: usize, lo: u64, hi: u64) -> Vec<u64> {
    assert!(
        hi - lo >= n as u64,
        "range too small for {n} distinct values"
    );
    let mut seen = std::collections::HashSet::new();
    let mut out = Vec::with_capacity(n);
    while out.len() < n {
        let v = rng.gen_range(lo..hi);
        if seen.insert(v) {
            out.push(v);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_streams() {
        let mk = || {
            let mut r = rng(7);
            (
                zipf_stream(&mut r, &[1, 2, 3, 4], 100, 1.2),
                markov_stream(&mut r, 16, 100, 0.8),
                uniform_stream(&mut r, 100, 0, 50),
            )
        };
        assert_eq!(mk(), mk());
    }

    #[test]
    fn zipf_is_skewed() {
        let mut r = rng(1);
        let universe: Vec<u64> = (0..32).collect();
        let s = zipf_stream(&mut r, &universe, 10_000, 1.5);
        let head = s.iter().filter(|&&v| v == 0).count();
        let tail = s.iter().filter(|&&v| v == 31).count();
        assert!(head > tail * 5, "head {head} vs tail {tail}");
    }

    #[test]
    fn markov_has_locality() {
        let mut r = rng(2);
        let s = markov_stream(&mut r, 64, 20_000, 0.9);
        // With sharpness 0.9 most transition mass sits on two successors
        // per state: the hottest 2*alphabet bigrams must carry the bulk of
        // the stream.
        let mut counts: std::collections::HashMap<(u64, u64), u64> = Default::default();
        for w in s.windows(2) {
            *counts.entry((w[0], w[1])).or_default() += 1;
        }
        let mut v: Vec<u64> = counts.values().copied().collect();
        v.sort_unstable_by(|a, b| b.cmp(a));
        let hot: u64 = v.iter().take(128).sum();
        let total: u64 = v.iter().sum();
        assert!(
            hot as f64 / total as f64 > 0.7,
            "hot bigram mass {hot}/{total}"
        );
    }

    #[test]
    fn uniform_in_range() {
        let mut r = rng(3);
        let s = uniform_stream(&mut r, 1000, 10, 20);
        assert!(s.iter().all(|&v| (10..20).contains(&v)));
    }

    #[test]
    fn distinct_are_distinct() {
        let mut r = rng(4);
        let v = distinct_values(&mut r, 100, 0, 1000);
        let set: std::collections::HashSet<u64> = v.iter().copied().collect();
        assert_eq!(set.len(), 100);
    }

    #[test]
    #[should_panic(expected = "range too small")]
    fn distinct_range_check() {
        let mut r = rng(5);
        let _ = distinct_values(&mut r, 10, 0, 5);
    }
}

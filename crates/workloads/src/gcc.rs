//! The gcc model — token-driven parser state machines.
//!
//! gcc's branch population is wide (thousands of static sites) and
//! moderately predictable: parsing decisions follow token classes and a
//! state register whose working set is small. We replicate several parser
//! blocks at distinct PCs (static breadth), drive them with a
//! token stream of medium locality, and keep the state transitions
//! register-carried — so a slice of the decisions is value-exact for ARVI
//! while most of the population behaves like ordinary biased/history
//! branches.

use crate::common::{emit_biased_guards, emit_counted_loop, emit_stream_next, Layout};
use crate::data;
use arvi_isa::{regs::*, AluOp, Cond, Program, ProgramBuilder, Reg};

/// Benchmark name.
pub const NAME: &str = "gcc";

const N_TOKENS: usize = 28;
const STREAM_LEN: usize = 4096;
const PARSER_BLOCKS: usize = 5;

/// Builds the gcc model program.
pub fn program(seed: u64) -> Program {
    let mut rng = data::rng(seed ^ 0x6763_635f);
    let mut b = ProgramBuilder::new();
    let mut l = Layout::new();

    let tokens = data::markov_stream(&mut rng, N_TOKENS, STREAM_LEN, 0.55);
    let stream_addr = l.alloc(STREAM_LEN);
    for (i, &t) in tokens.iter().enumerate() {
        b.data(stream_addr + (i as u64) * 8, t);
    }
    let cursor = l.alloc(1);
    let stats = l.alloc(1);
    b.data(cursor, 1);

    // S0 = stream base, S3 = parser state, S4 = accumulator, A1 = the
    // state as of the previous token (reduce decisions look at the state
    // a token behind, as shift-reduce parsers do; this also gives the
    // value a token's worth of time to write back).
    b.li(S0, stream_addr as i64);
    b.li(S3, 0);
    b.li(S7, stats as i64);
    b.li(A1, 0);
    // A0 holds the *lookahead* token, fetched a full iteration before the
    // parser blocks consume it (LR parsers hold their lookahead well in
    // advance) — so the token value has written back by classification
    // time.
    b.li(A0, tokens[0] as i64);

    let outer = b.here();

    // Replicated parser blocks: each classifies the token and advances the
    // state machine. Distinct static PCs stress predictor capacity.
    for blk in 0..PARSER_BLOCKS as i64 {
        let not_this_block = b.label();
        // Block selector: state % PARSER_BLOCKS picks the active block.
        b.alu_imm(AluOp::Rem, T4, S3, PARSER_BLOCKS as i64);
        b.li(T5, blk);
        b.branch_to_label(Cond::Ne, T4, T5, not_this_block);

        // Token classification ladder (token is loaded; later rungs see
        // it written back).
        let kw = b.label();
        let punct = b.label();
        let ident = b.label();
        let class_done = b.label();
        b.li(T6, 4);
        b.branch_to_label(Cond::Ltu, A0, T6, kw); // tokens 0..3: keywords
        b.li(T6, 10);
        b.branch_to_label(Cond::Ltu, A0, T6, punct); // 4..9: punctuation
        b.li(T6, 20);
        b.branch_to_label(Cond::Ltu, A0, T6, ident); // 10..19: identifiers
                                                     // literals: fold value into state
        b.alu(AluOp::Add, S3, S3, A0);
        b.jump_to_label(class_done);
        b.bind(kw);
        b.alu_imm(AluOp::Add, S3, S3, 7);
        b.jump_to_label(class_done);
        b.bind(punct);
        b.alu_imm(AluOp::Xor, S3, S3, 3);
        b.jump_to_label(class_done);
        b.bind(ident);
        b.alu_imm(AluOp::Add, S4, S4, 1);
        b.bind(class_done);
        b.alu_imm(AluOp::And, S3, S3, 63);

        // State-register decisions on the previous token's state:
        // value-exact for ARVI, ambiguous for history under token
        // interleaving.
        b.alu_imm(AluOp::And, T7, A1, 12);
        let no_reduce = b.label();
        b.branch_to_label(Cond::Ne, T7, Reg::ZERO, no_reduce);
        b.alu_imm(AluOp::Add, S4, S4, 2);
        b.bind(no_reduce);
        b.alu_imm(AluOp::And, T7, A1, 33);
        let no_shift = b.label();
        b.branch_to_label(Cond::Eq, T7, Reg::ZERO, no_shift);
        b.alu_imm(AluOp::Xor, S4, S4, 5);
        b.bind(no_shift);

        b.bind(not_this_block);
    }

    // Capture the state for the next token's reduce decisions and fetch
    // the next lookahead token.
    b.mv(A1, S3);
    emit_stream_next(&mut b, cursor, S0, (STREAM_LEN - 1) as i64, A0, T2, T3);
    // Symbol-table touch (loads) plus biased error checks.
    b.alu_imm(AluOp::And, T8, S4, (STREAM_LEN - 1) as i64);
    b.alu_imm(AluOp::Sll, T8, T8, 3);
    b.alu(AluOp::Add, T8, S0, T8);
    b.load(T9, T8, 0);
    b.alu(AluOp::Add, S4, S4, T9);
    emit_biased_guards(&mut b, 4, Reg::ZERO, T10, S4);
    emit_counted_loop(&mut b, 3, T11, S5);
    b.store(S4, S7, 0);
    b.jump(outer);

    b.build().with_name(NAME)
}

#[cfg(test)]
mod tests {
    use super::*;
    use arvi_isa::Emulator;

    #[test]
    fn runs_forever_and_is_deterministic() {
        let a: Vec<_> = Emulator::new(program(1)).take(30_000).collect();
        let b: Vec<_> = Emulator::new(program(1)).take(30_000).collect();
        assert_eq!(a.len(), 30_000);
        assert_eq!(a, b);
    }

    #[test]
    fn many_static_branch_sites() {
        let t: Vec<_> = Emulator::new(program(2)).take(100_000).collect();
        let sites: std::collections::HashSet<u32> =
            t.iter().filter(|d| d.is_branch()).map(|d| d.pc).collect();
        assert!(sites.len() >= 30, "static branch sites {}", sites.len());
    }

    #[test]
    fn state_machine_visits_many_states() {
        // The state register S3 is rewritten by `and S3, S3, 63`; collect
        // its values.
        let t: Vec<_> = Emulator::new(program(3)).take(200_000).collect();
        let states: std::collections::HashSet<u64> = t
            .iter()
            .filter(|d| d.dest == Some(S3))
            .map(|d| d.result & 63)
            .collect();
        assert!(states.len() >= 10, "states {}", states.len());
    }

    #[test]
    fn classification_ladder_splits_tokens() {
        let t: Vec<_> = Emulator::new(program(4)).take(100_000).collect();
        // First ladder rung (`bltu A0, T6`) must be genuinely mixed.
        let mut taken = 0u64;
        let mut total = 0u64;
        for d in &t {
            if d.is_branch() && d.srcs == [Some(A0), Some(T6)] {
                total += 1;
                taken += d.branch.unwrap().taken as u64;
            }
        }
        assert!(total > 1000);
        let rate = taken as f64 / total as f64;
        assert!((0.1..0.9).contains(&rate), "ladder taken rate {rate}");
    }
}

//! The go model — board-scan evaluation with data-dependent branches on a
//! continuously evolving position.
//!
//! go is the hardest branch workload in the SPEC95 suite: tactical
//! evaluation branches test board cells that mutate as the game proceeds,
//! so neither outcome history nor (at prediction time) register values
//! resolve them — the cell value is still in flight when the branch
//! fetches. This makes go's branches predominantly poorly-predicted *load
//! branches* (paper Figure 5), with large headroom for the *perfect value*
//! configuration — exactly the paper's observed shape.

use crate::common::{emit_counted_loop, emit_stream_next, Layout};
use crate::data;
use arvi_isa::{regs::*, AluOp, Cond, Program, ProgramBuilder, Reg};

/// Benchmark name.
pub const NAME: &str = "go";

const BOARD: u64 = 361; // 19 x 19
const MOVES_LEN: usize = 4096;

/// Builds the go model program.
pub fn program(seed: u64) -> Program {
    let mut rng = data::rng(seed ^ 0x676f_5f5f);
    let mut b = ProgramBuilder::new();
    let mut l = Layout::new();

    let board_addr = l.alloc(BOARD as usize);
    // Initial position: scattered stones.
    for i in 0..BOARD {
        let v = match i * 2654435761 % 97 {
            x if x < 30 => 1,
            x if x < 55 => 2,
            _ => 0,
        };
        b.data(board_addr + i * 8, v);
    }
    // Move stream: positions with mild locality (fights cluster).
    let moves = data::markov_stream(&mut rng, BOARD as usize, MOVES_LEN, 0.85);
    let moves_addr = l.alloc(MOVES_LEN);
    for (i, &m) in moves.iter().enumerate() {
        b.data(moves_addr + (i as u64) * 8, m);
    }
    let cursor = l.alloc(1);
    let stats = l.alloc(1);

    // S0 = move base, S1 = board base, S4 = accumulator.
    b.li(S0, moves_addr as i64);
    b.li(S1, board_addr as i64);
    b.li(S7, stats as i64);

    let outer = b.here();
    // pos = next move (memory cursor).
    emit_stream_next(&mut b, cursor, S0, (MOVES_LEN - 1) as i64, A0, T2, T3);

    // Mutate: board[pos] = (board[pos] + 1) % 3 — the position evolves.
    b.alu_imm(AluOp::Sll, T4, A0, 3);
    b.alu(AluOp::Add, T4, S1, T4); // &board[pos]
    b.load(T5, T4, 0);
    b.alu_imm(AluOp::Add, T5, T5, 1);
    b.alu_imm(AluOp::Rem, T5, T5, 3);
    b.store(T5, T4, 0);

    // Tactical scan: examine eight neighbours with stone/empty branches.
    // The cell is loaded immediately before each test: a classic poorly
    // predicted load branch.
    for &off in &[1i64, -1, 19, -19, 20, -20, 18, -18] {
        // q = (pos + off) clamped into the board by wrapping.
        b.alu_imm(AluOp::Add, T6, A0, off);
        b.alu_imm(AluOp::Add, T6, T6, BOARD as i64); // keep positive
        b.alu_imm(AluOp::Rem, T6, T6, BOARD as i64);
        b.alu_imm(AluOp::Sll, T6, T6, 3);
        b.alu(AluOp::Add, T6, S1, T6);
        b.load(T7, T6, 0); // neighbour stone
        let not_empty = b.label();
        let next = b.label();
        b.branch_to_label(Cond::Ne, T7, Reg::ZERO, not_empty); // empty?
        b.alu_imm(AluOp::Add, S4, S4, 1); // liberty found
        b.jump_to_label(next);
        b.bind(not_empty);
        b.branch_to_label(Cond::Eq, T7, T5, next); // friendly stone?
        b.alu_imm(AluOp::Sub, S4, S4, 1); // enemy contact
        b.bind(next);
    }

    // Influence accumulation: a predictable counted loop.
    emit_counted_loop(&mut b, 4, T8, S5);
    b.store(S4, S7, 0);
    b.jump(outer);

    b.build().with_name(NAME)
}

#[cfg(test)]
mod tests {
    use super::*;
    use arvi_isa::Emulator;

    #[test]
    fn runs_forever_and_is_deterministic() {
        let a: Vec<_> = Emulator::new(program(1)).take(30_000).collect();
        let b: Vec<_> = Emulator::new(program(1)).take(30_000).collect();
        assert_eq!(a.len(), 30_000);
        assert_eq!(a, b);
    }

    #[test]
    fn board_mutates() {
        let mut emu = Emulator::new(program(2));
        for _ in 0..50_000 {
            emu.step();
        }
        // At least a third of the cells should have been touched by now.
        let stores: std::collections::HashSet<u64> = {
            let t: Vec<_> = Emulator::new(program(2)).take(50_000).collect();
            t.iter()
                .filter(|d| d.is_store())
                .map(|d| d.mem_addr)
                .collect()
        };
        assert!(stores.len() > 100, "distinct store addrs {}", stores.len());
    }

    #[test]
    fn scan_branches_are_volatile() {
        // The neighbour-empty branch should hover well away from full
        // bias: per static branch, both outcomes in 20..80%.
        let t: Vec<_> = Emulator::new(program(3)).take(150_000).collect();
        let mut per_pc: std::collections::HashMap<u32, (u64, u64)> = Default::default();
        for d in &t {
            if d.is_branch() && d.srcs[0] == Some(T7) {
                let e = per_pc.entry(d.pc).or_default();
                if d.branch.unwrap().taken {
                    e.0 += 1;
                } else {
                    e.1 += 1;
                }
            }
        }
        assert!(!per_pc.is_empty());
        let mut volatile = 0;
        for (t, n) in per_pc.values() {
            let rate = *t as f64 / (t + n) as f64;
            if (0.15..0.85).contains(&rate) {
                volatile += 1;
            }
        }
        assert!(
            volatile >= per_pc.len() / 2,
            "volatile {volatile}/{}",
            per_pc.len()
        );
    }

    #[test]
    fn instruction_mix_is_load_heavy() {
        let t: Vec<_> = Emulator::new(program(4)).take(50_000).collect();
        let branches = t.iter().filter(|d| d.is_branch()).count() as f64 / t.len() as f64;
        let loads = t.iter().filter(|d| d.is_load()).count() as f64 / t.len() as f64;
        assert!((0.10..0.35).contains(&branches), "branch frac {branches}");
        assert!(loads > 0.08, "load frac {loads}");
    }
}

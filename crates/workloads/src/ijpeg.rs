//! The ijpeg model — block transforms over image data.
//!
//! ijpeg is loop-dominated (8x8 block transforms with multiply-accumulate
//! work) so most branches are trivially predictable loop back-edges. Its
//! interesting branches compare *freshly loaded pixels* against
//! thresholds: at prediction time the pixel is still in flight, so these
//! are load branches — but the pixel loads have early-known addresses and
//! no aliasing stores, making them maximally hoistable. This is the
//! benchmark the paper's *load back* configuration helps most: hoisting
//! converts the threshold tests into calculated branches whose outcome is
//! an exact function of the (small, quantized) pixel value.

use crate::common::{emit_stream_next, Layout};
use crate::data;
use arvi_isa::{regs::*, AluOp, Cond, Program, ProgramBuilder, Reg};

/// Benchmark name.
pub const NAME: &str = "ijpeg";

const IMAGE_LEN: usize = 8192;
const BLOCK: i64 = 8;

/// Builds the ijpeg model program.
pub fn program(seed: u64) -> Program {
    let mut rng = data::rng(seed ^ 0x6a70_6567);
    let mut b = ProgramBuilder::new();
    let mut l = Layout::new();

    // Image data: smooth (markov) 6-bit samples — spatial locality keeps
    // the pixel value working set small per region.
    let pixels = data::markov_stream(&mut rng, 64, IMAGE_LEN, 0.9);
    let image_addr = l.alloc(IMAGE_LEN);
    for (i, &p) in pixels.iter().enumerate() {
        b.data(image_addr + (i as u64) * 8, p * 4); // scale to 0..255
    }
    let out_addr = l.alloc(64);
    let cursor = l.alloc(1);

    // S0 = image base, S1 = output base, S4/S5 = accumulators.
    b.li(S0, image_addr as i64);
    b.li(S1, out_addr as i64);

    let outer = b.here();
    // Block base pointer comes through a memory cursor (block walker).
    emit_stream_next(&mut b, cursor, S0, (IMAGE_LEN - 1) as i64, A0, T2, T3);
    b.alu_imm(AluOp::And, S6, A0, 63); // data-derived quantizer tweak
                                       // The threshold pass's row pointer is computed HERE, at iteration
                                       // start, ~90 instructions before its loads execute: those loads have
                                       // early-known addresses and no aliasing stores, making them the
                                       // maximally hoistable population the load-back study converts.
    b.alu_imm(AluOp::Add, S2, A0, 3);
    b.alu_imm(AluOp::Rem, S2, S2, (IMAGE_LEN - BLOCK as usize) as i64);
    b.alu_imm(AluOp::Sll, S2, S2, 3);
    b.alu(AluOp::Add, S2, S0, S2);

    // Row transform: one 8-wide unrolled multiply-accumulate pass.
    b.li(S4, 0);
    b.li(T4, BLOCK); // row counter
    let row_loop = b.here();
    // row base = image + ((cursor value + row) * 8 within image)
    b.alu(AluOp::Add, T5, A0, T4);
    b.alu_imm(AluOp::Rem, T5, T5, (IMAGE_LEN - BLOCK as usize) as i64);
    b.alu_imm(AluOp::Sll, T5, T5, 3);
    b.alu(AluOp::Add, T5, S0, T5);
    for k in 0..4 {
        b.load(T6, T5, k * 8);
        b.alu_imm(AluOp::Mul, T6, T6, [3, -2, 5, 1][k as usize]);
        b.alu(AluOp::Add, S4, S4, T6);
    }
    b.alu_imm(AluOp::Sub, T4, T4, 1);
    b.branch(Cond::Ne, T4, Reg::ZERO, row_loop); // predictable back-edge

    // Clamp the transformed coefficient (biased branches on computed
    // values, as in range-limiting tables).
    b.alu_imm(AluOp::Sra, S4, S4, 3);
    let no_hi = b.label();
    b.li(T7, 255);
    b.branch_to_label(Cond::Lt, S4, T7, no_hi);
    b.mv(S4, T7);
    b.bind(no_hi);
    let no_lo = b.label();
    b.branch_to_label(Cond::Ge, S4, Reg::ZERO, no_lo);
    b.li(S4, 0);
    b.bind(no_lo);
    b.store(S4, S1, 0);

    // Threshold pass: the star load branches. The row pointer (S2) was
    // produced at iteration start, so each pixel load could be hoisted
    // across the whole transform; under current values the pixel is still
    // in flight when its branch predicts (a load branch), under load-back
    // the hoisted value resolves it exactly.
    b.li(T8, 128); // fixed quantization threshold
    for k in 0..4i64 {
        b.load(T9, S2, k * 8); // pixel from the early-computed row
        let below = b.label();
        b.branch_to_label(Cond::Lt, T9, T8, below); // star: pixel >= thr?
        b.alu(AluOp::Add, S5, S5, T9);
        b.bind(below);
        b.alu_imm(AluOp::Xor, S5, S5, 1);
    }
    b.alu(AluOp::Add, S5, S5, S6);
    b.store(S5, S1, 8);
    b.jump(outer);

    b.build().with_name(NAME)
}

#[cfg(test)]
mod tests {
    use super::*;
    use arvi_isa::Emulator;

    #[test]
    fn runs_forever_and_is_deterministic() {
        let a: Vec<_> = Emulator::new(program(1)).take(30_000).collect();
        let b: Vec<_> = Emulator::new(program(1)).take(30_000).collect();
        assert_eq!(a.len(), 30_000);
        assert_eq!(a, b);
    }

    #[test]
    fn loop_branches_dominate_and_are_predictable() {
        let t: Vec<_> = Emulator::new(program(2)).take(100_000).collect();
        // The row-loop back-edge: taken 7 of 8 times.
        let mut taken = 0u64;
        let mut total = 0u64;
        for d in &t {
            if d.is_branch() && d.srcs == [Some(T4), None] {
                total += 1;
                taken += d.branch.unwrap().taken as u64;
            }
        }
        assert!(total > 1000);
        let rate = taken as f64 / total as f64;
        assert!((0.8..0.95).contains(&rate), "back-edge taken rate {rate}");
    }

    #[test]
    fn threshold_branches_depend_on_pixels() {
        let t: Vec<_> = Emulator::new(program(3)).take(150_000).collect();
        let mut taken = 0u64;
        let mut total = 0u64;
        for d in &t {
            if d.is_branch() && d.srcs == [Some(T9), Some(T8)] {
                total += 1;
                taken += d.branch.unwrap().taken as u64;
            }
        }
        assert!(total > 1000, "threshold branches {total}");
        let rate = taken as f64 / total as f64;
        assert!((0.1..0.9).contains(&rate), "threshold taken rate {rate}");
    }

    #[test]
    fn loads_are_hoistable() {
        // The pixel loads must carry a healthy hoist distance (no aliasing
        // stores, address producers far back) for the load-back study.
        let t: Vec<_> = Emulator::new(program(4)).take(100_000).collect();
        let hoists: Vec<u32> = t
            .iter()
            .filter(|d| d.is_load() && d.dest == Some(T9))
            .map(|d| d.hoist)
            .collect();
        assert!(!hoists.is_empty());
        let avg = hoists.iter().map(|&h| h as f64).sum::<f64>() / hoists.len() as f64;
        assert!(avg > 4.0, "average hoist {avg}");
    }

    #[test]
    fn mul_work_present() {
        let t: Vec<_> = Emulator::new(program(5)).take(20_000).collect();
        let muls = t
            .iter()
            .filter(|d| d.kind == arvi_isa::InstKind::IntMul)
            .count();
        assert!(muls > 500, "muls {muls}");
    }
}

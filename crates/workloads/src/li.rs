//! The li model — a lisp-style list walker.
//!
//! xlisp's hot paths chase tagged cons cells: NULL tests end traversals
//! after a per-list length, and evaluation branches test properties of
//! computed values (lengths, sums, type tags). The list population is
//! stable, so these properties are exact functions of which list is being
//! walked — value-correlated in precisely the way ARVI exploits — while
//! the interleaving of lists (a long Zipf-recycled stream) starves
//! pure-history predictors of context.

use crate::common::{emit_biased_guards, emit_stream_next, Layout};
use crate::data;
use arvi_isa::{regs::*, AluOp, Cond, Program, ProgramBuilder, Reg};

/// Benchmark name.
pub const NAME: &str = "li";

const N_LISTS: usize = 160;
const RING_LEN: usize = 2048;
const TAG_NUM: i64 = 2;

/// Builds the li model program.
pub fn program(seed: u64) -> Program {
    let mut rng = data::rng(seed ^ 0x6c69_7370);
    let mut b = ProgramBuilder::new();
    let mut l = Layout::new();

    // Cons heap: each cell is [tag, value, next] padded to 4 words.
    // Lists have Zipf-ish lengths 1..=10 and homogeneous tags.
    let lengths = data::uniform_stream(&mut rng, N_LISTS, 1, 11);
    let total_cells: usize = lengths.iter().map(|&n| n as usize).sum();
    let heap_addr = l.alloc(total_cells * 4);
    let mut heads = Vec::with_capacity(N_LISTS);
    let mut cell = 0usize;
    for (li, &len) in lengths.iter().enumerate() {
        let mut next = 0u64;
        let tag = if li % 3 == 0 { 3 } else { TAG_NUM as u64 };
        // Build back-to-front so `next` links forward.
        let base = cell;
        for j in (0..len as usize).rev() {
            let addr = heap_addr + ((base + j) as u64) * 32;
            b.data(addr, tag);
            b.data(addr + 8, (li as u64 * 7 + j as u64) & 63);
            b.data(addr + 16, next);
            next = addr;
        }
        heads.push(next);
        cell += len as usize;
    }

    // Work ring: which list to walk next (hot lists repeat).
    let ring = data::zipf_stream(&mut rng, &heads, RING_LEN, 1.0);
    let ring_addr = l.alloc(RING_LEN);
    for (i, &h) in ring.iter().enumerate() {
        b.data(ring_addr + (i as u64) * 8, h);
    }
    let cursor = l.alloc(1);
    let stats = l.alloc(1);

    // S0 = ring base, S4 = sum, S5 = global accumulator, A1 = the
    // *previous* walk's sum. Evaluation decisions run one walk behind
    // production (as xlisp consumes a computed value well after building
    // it), so the sum has written back by the time its branches predict.
    b.li(S0, ring_addr as i64);
    b.li(S7, stats as i64);
    b.li(A1, 0);

    let outer = b.here();
    emit_stream_next(&mut b, cursor, S0, (RING_LEN - 1) as i64, A0, T2, T3);
    // Walk: sum elements until NIL.
    b.li(S4, 0);
    b.mv(T0, A0); // ptr
    let walk_done = b.label();
    let walk = b.here();
    b.branch_to_label(Cond::Eq, T0, Reg::ZERO, walk_done); // NULL test
    b.load(T1, T0, 0); // tag
    let not_num = b.label();
    let advance = b.label();
    b.branch_to_label(Cond::Ne, T1, Reg::ZERO, not_num); // never: tags nonzero
    b.alu_imm(AluOp::Add, S5, S5, 1);
    b.bind(not_num);
    b.load(T4, T0, 8); // value
    b.alu(AluOp::Add, S4, S4, T4);
    b.bind(advance);
    b.load(T0, T0, 16); // cdr
    b.jump(walk);
    b.bind(walk_done);

    // Evaluation decisions on the *previous* walk's sum: exact per-list
    // values. Parity / magnitude / field tests — ambiguous to history
    // (list order is Zipf-shuffled) but pure functions of the sum value.
    b.alu_imm(AluOp::And, T5, A1, 1);
    let even = b.label();
    b.branch_to_label(Cond::Eq, T5, Reg::ZERO, even); // star: parity
    b.alu_imm(AluOp::Add, S5, S5, 3);
    b.bind(even);
    b.li(T6, 96);
    let small = b.label();
    b.branch_to_label(Cond::Lt, A1, T6, small); // star: magnitude
    b.alu_imm(AluOp::Xor, S5, S5, 7);
    b.bind(small);
    b.alu_imm(AluOp::And, T7, A1, 6);
    let mid = b.label();
    b.branch_to_label(Cond::Ne, T7, Reg::ZERO, mid); // star: field test
    b.alu_imm(AluOp::Add, S5, S5, 1);
    b.bind(mid);
    // Hand this walk's sum to the next iteration's decisions.
    b.mv(A1, S4);

    // GC-ish bookkeeping: biased guards.
    emit_biased_guards(&mut b, 3, Reg::ZERO, T8, S5);
    b.store(S5, S7, 0);
    b.jump(outer);

    b.build().with_name(NAME)
}

#[cfg(test)]
mod tests {
    use super::*;
    use arvi_isa::Emulator;

    #[test]
    fn runs_forever_and_is_deterministic() {
        let a: Vec<_> = Emulator::new(program(1)).take(30_000).collect();
        let b: Vec<_> = Emulator::new(program(1)).take(30_000).collect();
        assert_eq!(a.len(), 30_000);
        assert_eq!(a, b);
    }

    #[test]
    fn null_exit_positions_vary() {
        // Walk lengths must differ across lists, so the NULL-test branch
        // exits after varying iteration counts.
        let t: Vec<_> = Emulator::new(program(2)).take(150_000).collect();
        let mut lengths = std::collections::HashSet::new();
        let mut count = 0u64;
        for d in &t {
            if d.is_branch() && d.srcs == [Some(T0), None] {
                if d.branch.unwrap().taken {
                    lengths.insert(count);
                    count = 0;
                } else {
                    count += 1;
                }
            }
        }
        assert!(lengths.len() >= 5, "distinct walk lengths {lengths:?}");
    }

    #[test]
    fn sum_branches_are_value_determined_but_volatile() {
        // The parity branch must see both outcomes overall (volatile to
        // history) while being a pure function of the sum register.
        let t: Vec<_> = Emulator::new(program(3)).take(150_000).collect();
        let mut taken = 0u64;
        let mut total = 0u64;
        for d in &t {
            if d.is_branch() && d.srcs == [Some(T5), None] {
                total += 1;
                taken += d.branch.unwrap().taken as u64;
            }
        }
        assert!(total > 500);
        let rate = taken as f64 / total as f64;
        assert!((0.15..0.85).contains(&rate), "parity taken rate {rate}");
    }

    #[test]
    fn instruction_mix_is_pointer_heavy() {
        let t: Vec<_> = Emulator::new(program(4)).take(50_000).collect();
        let loads = t.iter().filter(|d| d.is_load()).count() as f64 / t.len() as f64;
        let branches = t.iter().filter(|d| d.is_branch()).count() as f64 / t.len() as f64;
        assert!(loads > 0.15, "load frac {loads}");
        assert!((0.12..0.40).contains(&branches), "branch frac {branches}");
    }
}

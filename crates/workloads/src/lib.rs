//! # arvi-workloads
//!
//! Synthetic SPEC95-integer-like workloads for the ARVI reproduction
//! (Chen, Dropsho & Albonesi, HPCA 2003).
//!
//! The paper evaluates on the SPEC95 integer suite compiled for
//! SimpleScalar PISA — binaries and reference inputs we cannot ship or
//! run. Each benchmark here is instead a real program in the `arvi-isa`
//! instruction set whose *branch and dataflow behaviour* is modeled on the
//! published characterization of the original (see DESIGN.md §2 and §4):
//! the programs execute genuine register dataflow, so the Data Dependence
//! Table observes real chains and the ARVI predictor real value locality.
//!
//! ## Example
//!
//! ```
//! use arvi_workloads::Benchmark;
//! use arvi_isa::Emulator;
//!
//! let program = Benchmark::M88ksim.program(42);
//! let branches = Emulator::new(program)
//!     .take(10_000)
//!     .filter(|d| d.is_branch())
//!     .count();
//! assert!(branches > 500);
//! ```

pub mod common;
pub mod compress;
pub mod data;
pub mod gcc;
pub mod go;
pub mod ijpeg;
pub mod li;
pub mod m88ksim;
pub mod perl;
pub mod suite;
pub mod vortex;

pub use common::Layout;
pub use suite::{Benchmark, WorkloadSource};

//! The m88ksim model — dominated by the paper's Figure 7 kernel: the
//! `lookupdisasm` hash-table lookup.
//!
//! ```c
//! INSTAB *lookupdisasm(UINT key) {
//!     INSTAB *ptr = hashtab[key % HASHVAL];
//!     while (ptr != NULL && ptr->opcode != key)
//!         ptr = ptr->next;
//!     ...
//! }
//! ```
//!
//! "Manual inspection reveals that the contents of the hash table do not
//! vary, so the number of iterations to traverse the linked list is fully
//! defined by the value of the key" (paper Section 6). The loop-exit
//! branch is history-hostile (exit position varies per key) but exactly
//! determined by the *value* of `key` plus the iteration number — the
//! combination ARVI captures with its value-hashed index and chain-depth
//! tag.
//!
//! In the original program the key (the instruction word being decoded)
//! is produced hundreds of instructions before `lookupdisasm` runs, so
//! its value has long written back when the loop branches are fetched.
//! We model that distance by software-pipelining the key stream five
//! lookups deep (keys rest in `S3`/`S5`/`S6`/`A2`/`A3` for four full
//! lookup bodies before use); without it the key would still be in flight
//! at prediction time — even at the 60-stage depth — and no value-based
//! predictor could see it.
//!
//! The kernel is surrounded by predictable decode bookkeeping (counted
//! loops and biased guards), matching m88ksim's ~95% baseline hybrid
//! accuracy in the paper.

use crate::common::{emit_biased_guards, emit_counted_loop, emit_stream_next, Layout};
use crate::data;
use arvi_isa::{regs::*, AluOp, Cond, Program, ProgramBuilder, Reg};

/// Benchmark name.
pub const NAME: &str = "m88ksim";

const HASHVAL: u64 = 64;
const N_KEYS: usize = 150;
const N_UNKNOWN: usize = 12;
const KS_LEN: usize = 2048;

/// Builds the m88ksim model program.
pub fn program(seed: u64) -> Program {
    let mut rng = data::rng(seed ^ 0x6d38_386b);
    let mut b = ProgramBuilder::new();
    let mut l = Layout::new();

    // Fixed hash-table contents: keys grouped into per-bucket chains.
    let keys = data::distinct_values(&mut rng, N_KEYS + N_UNKNOWN, 1, 1 << 20);
    let (known, unknown) = keys.split_at(N_KEYS);
    let buckets_addr = l.alloc(HASHVAL as usize);
    let nodes_addr = l.alloc(N_KEYS * 4);
    let mut bucket_lists: Vec<Vec<usize>> = vec![Vec::new(); HASHVAL as usize];
    for (i, &k) in known.iter().enumerate() {
        bucket_lists[(k % HASHVAL) as usize].push(i);
    }
    for (bkt, list) in bucket_lists.iter().enumerate() {
        let head = list.first().map_or(0, |&ki| nodes_addr + (ki as u64) * 32);
        b.data(buckets_addr + (bkt as u64) * 8, head);
        for (j, &ki) in list.iter().enumerate() {
            let node = nodes_addr + (ki as u64) * 32;
            b.data(node, known[ki]);
            let next = list.get(j + 1).map_or(0, |&n| nodes_addr + (n as u64) * 32);
            b.data(node + 8, next);
            b.data(node + 16, known[ki] >> 8); // decode payload
        }
    }

    // Key stream: hot keys dominate (Zipf), with a sprinkling of unknown
    // keys that traverse the whole chain and exit through NULL.
    let mut stream = data::zipf_stream(&mut rng, known, KS_LEN, 0.9);
    for s in stream.iter_mut().step_by(13) {
        *s = unknown[(*s % N_UNKNOWN as u64) as usize];
    }
    let ks_addr = l.alloc(KS_LEN);
    for (i, &k) in stream.iter().enumerate() {
        b.data(ks_addr + (i as u64) * 8, k);
    }
    let cursor = l.alloc(1);
    let stats = l.alloc(1);
    // Prime the pipelined key registers with the first five stream
    // entries (the cursor starts past them).
    b.data(cursor, 5);

    // S0 = key-stream base, S1 = bucket base, S2 = guard flags (zero),
    // S3/S5/S6/A2/A3 = pipelined keys, S4 = accumulator, S7 = stats base.
    b.li(S0, ks_addr as i64);
    b.li(S1, buckets_addr as i64);
    b.li(S2, 0);
    b.li(S7, stats as i64);
    b.li(S3, stream[0] as i64);
    b.li(S5, stream[1] as i64);
    b.li(S6, stream[2] as i64);
    b.li(A2, stream[3] as i64);
    b.li(A3, stream[4] as i64);

    let outer = b.here();
    for key_reg in [S3, S5, S6, A2, A3] {
        // --- lookupdisasm(key_reg) ---
        // ptr = hashtab[key % HASHVAL]
        b.alu_imm(AluOp::Rem, T4, key_reg, HASHVAL as i64);
        b.alu_imm(AluOp::Sll, T4, T4, 3);
        b.alu(AluOp::Add, T4, S1, T4);
        b.load(T0, T4, 0);

        // while (ptr != NULL && ptr->opcode != key) ptr = ptr->next;
        let found = b.label();
        let miss = b.label();
        let done = b.label();
        let head = b.here();
        b.branch_to_label(Cond::Eq, T0, Reg::ZERO, miss);
        b.load(T1, T0, 0);
        b.branch_to_label(Cond::Eq, T1, key_reg, found); // the star branch
                                                         // Per-node decode work (as the real routine does) — it also keeps
                                                         // the dependence-chain depth stride per iteration well above the
                                                         // commit-state jitter, so the depth tag cleanly separates loop
                                                         // iterations.
        b.load(T7, T0, 16);
        b.alu(AluOp::Add, S4, S4, T7);
        b.alu_imm(AluOp::Xor, T7, T7, 5);
        b.alu(AluOp::Add, S4, S4, T7);
        b.load(T0, T0, 8);
        b.jump(head);

        b.bind(found);
        b.alu(AluOp::Add, S4, S4, T1);
        b.jump_to_label(done);
        b.bind(miss);
        b.alu_imm(AluOp::Add, S4, S4, 1);
        b.bind(done);

        // Decode bookkeeping: the easily predicted bulk of the branch mix.
        emit_counted_loop(&mut b, 5, T5, T8);
        emit_biased_guards(&mut b, 3, S2, T6, T8);
        b.store(S4, S7, 0);

        // Refill the key register for use four lookups from now.
        emit_stream_next(&mut b, cursor, S0, (KS_LEN - 1) as i64, key_reg, T2, T3);
    }
    b.jump(outer);

    b.build().with_name(NAME)
}

#[cfg(test)]
mod tests {
    use super::*;
    use arvi_isa::Emulator;
    use std::collections::HashMap;

    #[test]
    fn runs_forever_and_is_deterministic() {
        let a: Vec<_> = Emulator::new(program(1)).take(20_000).collect();
        let b: Vec<_> = Emulator::new(program(1)).take(20_000).collect();
        assert_eq!(a.len(), 20_000, "program must not halt");
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a: Vec<_> = Emulator::new(program(1)).take(5_000).collect();
        let b: Vec<_> = Emulator::new(program(2)).take(5_000).collect();
        assert_ne!(a, b);
    }

    #[test]
    fn instruction_mix_is_realistic() {
        let t: Vec<_> = Emulator::new(program(3)).take(50_000).collect();
        let branches = t.iter().filter(|d| d.is_branch()).count() as f64 / t.len() as f64;
        let loads = t.iter().filter(|d| d.is_load()).count() as f64 / t.len() as f64;
        let stores = t.iter().filter(|d| d.is_store()).count() as f64 / t.len() as f64;
        assert!((0.10..0.35).contains(&branches), "branch frac {branches}");
        assert!((0.05..0.40).contains(&loads), "load frac {loads}");
        assert!(stores > 0.005, "store frac {stores}");
    }

    #[test]
    fn keys_rest_two_lookups_before_use() {
        // The value loaded into a key register must not be compared by the
        // star branch until at least 200 dynamic instructions later —
        // the software-pipelining distance ARVI depends on (it must beat
        // even the 60-stage availability horizon).
        let t: Vec<_> = Emulator::new(program(5)).take(100_000).collect();
        let mut last_load: HashMap<arvi_isa::Reg, u64> = HashMap::new();
        let mut min_gap = u64::MAX;
        for d in &t {
            if d.is_load() {
                if let Some(r) = d.dest {
                    if [S3, S5, S6, A2, A3].contains(&r) {
                        last_load.insert(r, d.seq);
                    }
                }
            }
            if d.is_branch() && d.srcs[0] == Some(T1) {
                let key_reg = d.srcs[1].expect("star compares a key register");
                if let Some(&at) = last_load.get(&key_reg) {
                    min_gap = min_gap.min(d.seq - at);
                }
            }
        }
        assert!(min_gap >= 200, "minimum load-to-use gap {min_gap}");
    }

    #[test]
    fn star_branch_exit_position_is_key_determined() {
        // Group star-branch executions by lookup and confirm that the same
        // key always exits after the same number of iterations — the
        // paper's premise for the m88ksim result.
        let prog = program(4);
        let emu = Emulator::new(prog);
        let mut exits: HashMap<u64, usize> = HashMap::new();
        let mut iter_count = 0usize;
        let mut current_key = 0u64;
        let mut key_values: HashMap<arvi_isa::Reg, u64> = HashMap::new();
        for d in emu.take(300_000) {
            if let Some(r) = d.dest {
                if [S3, S5, S6, A2, A3].contains(&r) {
                    key_values.insert(r, d.result);
                }
            }
            if d.is_branch() && d.srcs[0] == Some(T0) {
                // NULL-check exit (unknown key): abandon the current count.
                if d.branch.expect("is_branch").taken {
                    iter_count = 0;
                    current_key = 0;
                }
            }
            if d.is_branch() && d.srcs[0] == Some(T1) {
                let key_reg = d.srcs[1].expect("star compares a key register");
                let key = key_values.get(&key_reg).copied().unwrap_or(0);
                if key != current_key {
                    current_key = key;
                    iter_count = 0;
                }
                let info = d.branch.expect("is_branch");
                if info.taken {
                    let prev = exits.insert(current_key, iter_count);
                    if let Some(p) = prev {
                        assert_eq!(p, iter_count, "key {current_key:#x} exit moved");
                    }
                    iter_count = 0;
                    current_key = 0;
                } else {
                    iter_count += 1;
                }
            }
        }
        assert!(exits.len() > 20, "saw {} distinct found keys", exits.len());
        let distinct: std::collections::HashSet<usize> = exits.values().copied().collect();
        assert!(distinct.len() >= 3, "positions {distinct:?}");
    }
}

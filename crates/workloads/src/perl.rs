//! The perl model — a bytecode interpreter dispatch loop.
//!
//! perl's hot loop fetches an opcode and dispatches through a compare
//! ladder, then does per-op work (arithmetic, hash probes, string scans).
//! The interpreted program is itself loopy, so the opcode stream is highly
//! repetitive — global history does well — while ARVI picks up the ladder
//! rungs whose opcode value has written back by the time they predict.

use crate::common::{emit_biased_guards, emit_stream_next, Layout};
use crate::data;
use arvi_isa::{regs::*, AluOp, Cond, Program, ProgramBuilder, Reg};

/// Benchmark name.
pub const NAME: &str = "perl";

const N_OPS: usize = 12;
const CODE_LEN: usize = 4096;
const STR_LEN: usize = 24;

/// Builds the perl model program.
pub fn program(seed: u64) -> Program {
    let mut rng = data::rng(seed ^ 0x7065_726c);
    let mut b = ProgramBuilder::new();
    let mut l = Layout::new();

    // The interpreted bytecode: strongly loopy (sharp Markov).
    let code = data::markov_stream(&mut rng, N_OPS, CODE_LEN, 0.92);
    let code_addr = l.alloc(CODE_LEN);
    for (i, &op) in code.iter().enumerate() {
        b.data(code_addr + (i as u64) * 8, op);
    }
    // A string pool for the compare op.
    let strings_addr = l.alloc(STR_LEN * 4);
    for s in 0..4u64 {
        for i in 0..STR_LEN as u64 {
            // Strings share prefixes; diverge at data-dependent points.
            let c = if i < 4 + s * 3 { 7 } else { 7 + s + i };
            b.data(strings_addr + (s * STR_LEN as u64 + i) * 8, c);
        }
    }
    let cursor = l.alloc(1);
    let stats = l.alloc(1);

    // S0 = code base, S1 = string pool, S4 = accumulator, S5 = operand.
    b.li(S0, code_addr as i64);
    b.li(S1, strings_addr as i64);
    b.li(S5, 1);
    b.li(S7, stats as i64);

    let outer = b.here();
    emit_stream_next(&mut b, cursor, S0, (CODE_LEN - 1) as i64, A0, T2, T3);

    // Dispatch ladder over the hot opcodes.
    let next_op = b.label();
    let mut arms: Vec<arvi_isa::Label> = (0..6).map(|_| b.label()).collect();
    for (op, arm) in arms.iter().enumerate() {
        b.li(T4, op as i64);
        b.branch_to_label(Cond::Eq, A0, T4, *arm);
    }
    // Default arm: small arithmetic.
    b.alu(AluOp::Add, S4, S4, A0);
    b.jump_to_label(next_op);

    // op 0: add
    b.bind(arms.remove(0));
    b.alu(AluOp::Add, S4, S4, S5);
    b.jump_to_label(next_op);
    // op 1: xor-shift
    b.bind(arms.remove(0));
    b.alu_imm(AluOp::Xor, S4, S4, 0x55);
    b.alu_imm(AluOp::Sll, S5, S5, 1);
    b.alu_imm(AluOp::And, S5, S5, 1023);
    b.jump_to_label(next_op);
    // op 2: hash probe (load-dependent test)
    b.bind(arms.remove(0));
    b.alu_imm(AluOp::And, T5, S4, (STR_LEN as i64 * 4) - 1);
    b.alu_imm(AluOp::Sll, T5, T5, 3);
    b.alu(AluOp::Add, T5, S1, T5);
    b.load(T6, T5, 0);
    let probe_zero = b.label();
    b.branch_to_label(Cond::Eq, T6, Reg::ZERO, probe_zero);
    b.alu(AluOp::Add, S4, S4, T6);
    b.bind(probe_zero);
    b.jump_to_label(next_op);
    // op 3: string compare with early exit (depth-keyed loop)
    b.bind(arms.remove(0));
    b.alu_imm(AluOp::And, T5, S4, 3); // pick string by value
    b.alu_imm(AluOp::Mul, T5, T5, STR_LEN as i64 * 8);
    b.alu(AluOp::Add, T5, S1, T5); // string a = pool[k]
    b.mv(T6, S1); // string b = pool[0]
    b.li(T7, STR_LEN as i64);
    let cmp_done = b.label();
    let cmp = b.here();
    b.load(T8, T5, 0);
    b.load(T9, T6, 0);
    b.branch_to_label(Cond::Ne, T8, T9, cmp_done); // diverge: value-timed
    b.alu_imm(AluOp::Add, T5, T5, 8);
    b.alu_imm(AluOp::Add, T6, T6, 8);
    b.alu_imm(AluOp::Sub, T7, T7, 1);
    b.branch(Cond::Ne, T7, Reg::ZERO, cmp);
    b.bind(cmp_done);
    b.alu(AluOp::Add, S4, S4, T7);
    b.jump_to_label(next_op);
    // op 4: stack push (store)
    b.bind(arms.remove(0));
    b.store(S4, S7, 0);
    b.alu_imm(AluOp::Add, S5, S5, 3);
    b.jump_to_label(next_op);
    // op 5: conditional on operand value (calculated branch)
    b.bind(arms.remove(0));
    b.alu_imm(AluOp::And, T5, S5, 7);
    let odd = b.label();
    b.branch_to_label(Cond::Ne, T5, Reg::ZERO, odd);
    b.alu_imm(AluOp::Add, S4, S4, 9);
    b.bind(odd);

    b.bind(next_op);
    emit_biased_guards(&mut b, 2, Reg::ZERO, T10, S4);
    b.jump(outer);

    b.build().with_name(NAME)
}

#[cfg(test)]
mod tests {
    use super::*;
    use arvi_isa::Emulator;

    #[test]
    fn runs_forever_and_is_deterministic() {
        let a: Vec<_> = Emulator::new(program(1)).take(30_000).collect();
        let b: Vec<_> = Emulator::new(program(1)).take(30_000).collect();
        assert_eq!(a.len(), 30_000);
        assert_eq!(a, b);
    }

    #[test]
    fn dispatch_ladder_exercises_multiple_arms() {
        // Each ladder rung compares A0 to T4: count per-PC taken rates;
        // several rungs must fire (multiple opcodes live).
        let t: Vec<_> = Emulator::new(program(2)).take(150_000).collect();
        let mut fired = std::collections::HashSet::new();
        for d in &t {
            if d.is_branch() && d.srcs == [Some(A0), Some(T4)] && d.branch.unwrap().taken {
                fired.insert(d.pc);
            }
        }
        assert!(fired.len() >= 4, "arms fired: {}", fired.len());
    }

    #[test]
    fn string_compare_exits_at_varying_depths() {
        let t: Vec<_> = Emulator::new(program(3)).take(300_000).collect();
        let mut run = 0u64;
        let mut depths = std::collections::HashSet::new();
        for d in &t {
            if d.is_branch() && d.srcs == [Some(T8), Some(T9)] {
                if d.branch.unwrap().taken {
                    depths.insert(run);
                    run = 0;
                } else {
                    run += 1;
                }
            }
        }
        assert!(depths.len() >= 2, "divergence depths {depths:?}");
    }

    #[test]
    fn opcode_stream_is_repetitive() {
        // Markov sharpness must show: the top-3 opcodes cover most of the
        // stream (hot interpreted loop).
        let t: Vec<_> = Emulator::new(program(4)).take(100_000).collect();
        let mut counts: std::collections::HashMap<u64, u64> = Default::default();
        for d in &t {
            if d.is_load() && d.dest == Some(A0) {
                *counts.entry(d.result).or_default() += 1;
            }
        }
        let mut v: Vec<u64> = counts.values().copied().collect();
        v.sort_unstable_by(|a, b| b.cmp(a));
        let total: u64 = v.iter().sum();
        let top3: u64 = v.iter().take(3).sum();
        // Marginal concentration is milder than transition concentration;
        // 3 of 12 opcodes carrying over 30% of the stream is already far
        // from uniform (25%).
        assert!(top3 as f64 / total as f64 > 0.30, "top3 {top3} of {total}");
    }
}

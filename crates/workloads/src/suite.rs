//! The benchmark suite registry (the paper's Table 3).

use arvi_isa::Program;
use std::fmt;

/// The suite registration seam: anything that can build a named, seeded
/// [`Program`] can be run wherever a benchmark runs — simulated live,
/// recorded to a trace, swept over experiment grids.
///
/// [`Benchmark`] implements it for the eight SPEC95-style models;
/// `arvi_synth::ScenarioSpec` implements it for synthetic scenarios.
pub trait WorkloadSource {
    /// The workload's name (used in results, tables and trace files).
    fn name(&self) -> &str;

    /// Builds the workload's program with the given input seed.
    fn program(&self, seed: u64) -> Program;
}

impl WorkloadSource for Benchmark {
    fn name(&self) -> &str {
        Benchmark::name(*self)
    }

    fn program(&self, seed: u64) -> Program {
        Benchmark::program(*self, seed)
    }
}

/// One of the eight SPEC95 integer benchmarks the paper evaluates,
/// reproduced here as a synthetic behavioural model (see DESIGN.md §2 for
/// the substitution rationale).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Benchmark {
    /// Parser/compiler state machines, wide static branch population.
    Gcc,
    /// LZW dictionary probing on locality-rich input.
    Compress,
    /// Board-scan evaluation: the suite's hardest branches.
    Go,
    /// Block transforms: loop-dominated with hoistable pixel tests.
    Ijpeg,
    /// Lisp list walking with value-exact evaluation decisions.
    Li,
    /// Microprocessor simulator: the `lookupdisasm` hash-chain kernel.
    M88ksim,
    /// Bytecode interpreter dispatch.
    Perl,
    /// Object-database validation: heavily biased checks.
    Vortex,
}

impl Benchmark {
    /// All eight benchmarks, in the paper's table order.
    pub fn all() -> [Benchmark; 8] {
        [
            Benchmark::Gcc,
            Benchmark::Compress,
            Benchmark::Go,
            Benchmark::Ijpeg,
            Benchmark::Li,
            Benchmark::M88ksim,
            Benchmark::Perl,
            Benchmark::Vortex,
        ]
    }

    /// The benchmark's canonical name.
    pub fn name(self) -> &'static str {
        match self {
            Benchmark::Gcc => crate::gcc::NAME,
            Benchmark::Compress => crate::compress::NAME,
            Benchmark::Go => crate::go::NAME,
            Benchmark::Ijpeg => crate::ijpeg::NAME,
            Benchmark::Li => crate::li::NAME,
            Benchmark::M88ksim => crate::m88ksim::NAME,
            Benchmark::Perl => crate::perl::NAME,
            Benchmark::Vortex => crate::vortex::NAME,
        }
    }

    /// Parses a benchmark name.
    pub fn from_name(name: &str) -> Option<Benchmark> {
        Benchmark::all().into_iter().find(|b| b.name() == name)
    }

    /// Builds the benchmark's program with the given input seed.
    pub fn program(self, seed: u64) -> Program {
        match self {
            Benchmark::Gcc => crate::gcc::program(seed),
            Benchmark::Compress => crate::compress::program(seed),
            Benchmark::Go => crate::go::program(seed),
            Benchmark::Ijpeg => crate::ijpeg::program(seed),
            Benchmark::Li => crate::li::program(seed),
            Benchmark::M88ksim => crate::m88ksim::program(seed),
            Benchmark::Perl => crate::perl::program(seed),
            Benchmark::Vortex => crate::vortex::program(seed),
        }
    }

    /// The paper's Table 3 measurement window for the original SPEC95
    /// binary, in millions of instructions `(start, end)`. Reported for
    /// provenance; our synthetic models reach steady state much sooner
    /// (see [`Benchmark::default_window`]).
    pub fn paper_window_m(self) -> (u64, u64) {
        match self {
            Benchmark::Gcc => (200, 300),
            Benchmark::Compress => (3000, 3100),
            Benchmark::Go => (900, 1000),
            Benchmark::Ijpeg => (700, 800),
            Benchmark::Li => (400, 500),
            Benchmark::M88ksim => (150, 250),
            Benchmark::Perl => (700, 800),
            Benchmark::Vortex => (2400, 2500),
        }
    }

    /// The default `(warmup, measured)` dynamic instruction counts used by
    /// the experiment harness for this reproduction.
    pub fn default_window(self) -> (u64, u64) {
        (100_000, 500_000)
    }
}

impl fmt::Display for Benchmark {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use arvi_isa::Emulator;

    #[test]
    fn all_eight_present_and_named() {
        // `into_iter()`: on a `&Benchmark` receiver, method resolution
        // would pick `WorkloadSource::name(&self)` and tie the returned
        // `&str` to the temporary array.
        let names: Vec<&str> = Benchmark::all().into_iter().map(|b| b.name()).collect();
        assert_eq!(
            names,
            vec!["gcc", "compress", "go", "ijpeg", "li", "m88ksim", "perl", "vortex"]
        );
    }

    #[test]
    fn from_name_round_trips() {
        for b in Benchmark::all() {
            assert_eq!(Benchmark::from_name(b.name()), Some(b));
        }
        assert_eq!(Benchmark::from_name("nope"), None);
    }

    #[test]
    fn every_program_builds_and_runs() {
        for b in Benchmark::all() {
            let t: Vec<_> = Emulator::new(b.program(42)).take(5_000).collect();
            assert_eq!(t.len(), 5_000, "{b} halted early");
            let branches = t.iter().filter(|d| d.is_branch()).count();
            assert!(branches > 100, "{b} has too few branches: {branches}");
        }
    }

    #[test]
    fn paper_windows_match_table_3() {
        assert_eq!(Benchmark::Compress.paper_window_m(), (3000, 3100));
        assert_eq!(Benchmark::M88ksim.paper_window_m(), (150, 250));
    }
}

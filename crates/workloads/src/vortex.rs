//! The vortex model — object-database validation.
//!
//! vortex manipulates object records with layered integrity checks that
//! essentially always pass: its branch population is overwhelmingly
//! biased, which is why every predictor in the paper sits near 99% on it.
//! The residual hard branches test object attributes with strong value
//! locality (object kinds repeat).

use crate::common::{emit_biased_guards, emit_counted_loop, emit_stream_next, Layout};
use crate::data;
use arvi_isa::{regs::*, AluOp, Cond, Program, ProgramBuilder, Reg};

/// Benchmark name.
pub const NAME: &str = "vortex";

const N_OBJECTS: usize = 256;
const RING_LEN: usize = 4096;
const OBJ_WORDS: u64 = 8; // [kind, flags, size, link, payload x4]

/// Builds the vortex model program.
pub fn program(seed: u64) -> Program {
    let mut rng = data::rng(seed ^ 0x766f_7274);
    let mut b = ProgramBuilder::new();
    let mut l = Layout::new();

    // Object store: kinds from a small set; flags almost always "valid".
    let heap_addr = l.alloc(N_OBJECTS * OBJ_WORDS as usize);
    let kinds = data::uniform_stream(&mut rng, N_OBJECTS, 0, 6);
    for (i, &kind) in kinds.iter().enumerate() {
        let base = heap_addr + (i as u64) * OBJ_WORDS * 8;
        b.data(base, kind);
        // 3% of objects are "dirty" (flags nonzero).
        let dirty = (i * 2654435761) % 100 < 3;
        b.data(base + 8, dirty as u64);
        b.data(base + 16, 16 + (kind * 8));
        let link = heap_addr + (((i * 7 + 3) % N_OBJECTS) as u64) * OBJ_WORDS * 8;
        b.data(base + 24, link);
    }
    // Access ring with hot objects.
    let addrs: Vec<u64> = (0..N_OBJECTS as u64)
        .map(|i| heap_addr + i * OBJ_WORDS * 8)
        .collect();
    let ring = data::zipf_stream(&mut rng, &addrs, RING_LEN, 0.8);
    let ring_addr = l.alloc(RING_LEN);
    for (i, &a) in ring.iter().enumerate() {
        b.data(ring_addr + (i as u64) * 8, a);
    }
    let cursor = l.alloc(1);
    let stats = l.alloc(1);

    b.li(S0, ring_addr as i64);
    b.li(S7, stats as i64);

    let outer = b.here();
    emit_stream_next(&mut b, cursor, S0, (RING_LEN - 1) as i64, A0, T2, T3);

    // Validation cascade: flags == 0, size sane, link aligned —
    // essentially always pass.
    b.load(T4, A0, 8); // flags
    let invalid = b.label();
    let valid = b.label();
    b.branch_to_label(Cond::Ne, T4, Reg::ZERO, invalid); // ~97% not taken
    b.load(T5, A0, 16); // size
    b.li(T6, 128);
    b.branch_to_label(Cond::Geu, T5, T6, invalid); // always not taken
    b.load(T7, A0, 24); // link
    b.alu_imm(AluOp::And, T8, T7, 7);
    b.branch_to_label(Cond::Ne, T8, Reg::ZERO, invalid); // always not taken
    b.jump_to_label(valid);
    b.bind(invalid);
    b.alu_imm(AluOp::Add, S5, S5, 1); // repair path
    b.bind(valid);

    // Kind dispatch: moderate value locality (hot kinds repeat).
    b.load(T9, A0, 0); // kind
    for k in 0..3i64 {
        let skip = b.label();
        b.li(T10, k);
        b.branch_to_label(Cond::Ne, T9, T10, skip);
        b.alu_imm(AluOp::Add, S4, S4, k + 1);
        b.bind(skip);
    }

    // Follow one link hop and re-check (pointer traffic).
    b.load(T11, A0, 24);
    b.load(T4, T11, 8); // linked object's flags
    let clean = b.label();
    b.branch_to_label(Cond::Eq, T4, Reg::ZERO, clean); // ~97% taken
    b.alu_imm(AluOp::Add, S5, S5, 1);
    b.bind(clean);

    // Transaction bookkeeping: fully predictable.
    emit_counted_loop(&mut b, 5, T5, S6);
    emit_biased_guards(&mut b, 5, Reg::ZERO, T6, S6);
    b.store(S4, S7, 0);
    b.jump(outer);

    b.build().with_name(NAME)
}

#[cfg(test)]
mod tests {
    use super::*;
    use arvi_isa::Emulator;

    #[test]
    fn runs_forever_and_is_deterministic() {
        let a: Vec<_> = Emulator::new(program(1)).take(30_000).collect();
        let b: Vec<_> = Emulator::new(program(1)).take(30_000).collect();
        assert_eq!(a.len(), 30_000);
        assert_eq!(a, b);
    }

    #[test]
    fn branches_are_heavily_biased() {
        // The signature property of vortex: the vast majority of dynamic
        // branches go one way.
        let t: Vec<_> = Emulator::new(program(2)).take(100_000).collect();
        let mut per_pc: std::collections::HashMap<u32, (u64, u64)> = Default::default();
        for d in &t {
            if d.is_branch() {
                let e = per_pc.entry(d.pc).or_default();
                if d.branch.unwrap().taken {
                    e.0 += 1;
                } else {
                    e.1 += 1;
                }
            }
        }
        let mut biased = 0usize;
        for (t, n) in per_pc.values() {
            let rate = *t as f64 / (t + n) as f64;
            if !(0.10..0.90).contains(&rate) {
                biased += 1;
            }
        }
        assert!(
            biased as f64 / per_pc.len() as f64 > 0.6,
            "biased {biased}/{}",
            per_pc.len()
        );
    }

    #[test]
    fn dirty_objects_occasionally_fail_validation() {
        let t: Vec<_> = Emulator::new(program(3)).take(200_000).collect();
        let mut repairs = 0u64;
        for d in &t {
            if d.is_branch() && d.srcs == [Some(T4), None] && d.branch.unwrap().taken {
                repairs += 1;
            }
        }
        assert!(repairs > 20, "repairs {repairs}");
    }

    #[test]
    fn instruction_mix_is_realistic() {
        let t: Vec<_> = Emulator::new(program(4)).take(50_000).collect();
        let branches = t.iter().filter(|d| d.is_branch()).count() as f64 / t.len() as f64;
        let loads = t.iter().filter(|d| d.is_load()).count() as f64 / t.len() as f64;
        assert!((0.12..0.40).contains(&branches), "branch frac {branches}");
        assert!(loads > 0.1, "load frac {loads}");
    }
}

//! Demonstrates the paper's Section 3 applications of on-line dependence
//! tracking, driven by a real workload trace.
//!
//! Run with: `cargo run --release --example applications`

use arvi::apps::{
    BexExtractor, ChainScheduler, CriticalityEstimator, FetchPolicy, SelectiveValuePredictor,
    SmtFetchPolicy,
};
use arvi::core::{PhysReg, RenamedOp};
use arvi::isa::{DynInst, Emulator, Reg};
use arvi::workloads::Benchmark;

/// Renames trace records onto a flat physical register space (one fresh
/// register per destination write, wrapping inside the window).
struct MiniRename {
    map: [PhysReg; 32],
    next: u16,
    limit: u16,
}

impl MiniRename {
    fn new(limit: u16) -> MiniRename {
        let mut map = [PhysReg(0); 32];
        for (i, m) in map.iter_mut().enumerate() {
            *m = PhysReg(i as u16);
        }
        MiniRename {
            map,
            next: 32,
            limit,
        }
    }

    fn rename(&mut self, d: &DynInst) -> (RenamedOp, Option<Reg>) {
        let srcs = [
            d.srcs[0].map(|r| self.map[r.index()]),
            d.srcs[1].map(|r| self.map[r.index()]),
        ];
        let dest = d.dest.map(|logical| {
            let phys = PhysReg(self.next);
            self.next = if self.next + 1 >= self.limit {
                32
            } else {
                self.next + 1
            };
            self.map[logical.index()] = phys;
            phys
        });
        (
            RenamedOp {
                dest,
                srcs,
                is_load: d.is_load(),
            },
            d.dest,
        )
    }
}

fn main() {
    let window = 48usize;
    let phys = 512u16;

    // 1. Dynamic scheduling priority.
    println!("== 1. issue priority from trailing-dependent counts ==");
    let mut sched = ChainScheduler::new(window, phys as usize);
    let mut rn = MiniRename::new(phys);
    let mut slots = Vec::new();
    for d in Emulator::new(Benchmark::Li.program(7)).take(window) {
        let (op, _) = rn.rename(&d);
        slots.push((sched.insert(&op), d.kind));
    }
    let mut loads: Vec<_> = slots
        .iter()
        .filter(|(_, k)| k.is_load())
        .map(|(s, _)| *s)
        .collect();
    sched.rank(&mut loads);
    println!("   {} in-flight loads ranked by dependents:", loads.len());
    for s in loads.iter().take(5) {
        println!("     {} -> {} dependents", s, sched.priority(*s));
    }

    // 2. SMT fetch gating.
    println!("\n== 2. SMT fetch: ICOUNT vs chain-length ==");
    let mut smt = SmtFetchPolicy::new(2, window, phys as usize);
    let mut rn0 = MiniRename::new(phys);
    let mut rn1 = MiniRename::new(phys);
    // Thread 0 runs pointer-chasing li; thread 1 runs loop-parallel ijpeg.
    for d in Emulator::new(Benchmark::Li.program(8)).take(24) {
        let (op, _) = rn0.rename(&d);
        smt.insert(0, &op);
    }
    for d in Emulator::new(Benchmark::Ijpeg.program(8)).take(24) {
        let (op, _) = rn1.rename(&d);
        smt.insert(1, &op);
    }
    println!(
        "   icount:      thread0={} thread1={} -> pick {}",
        smt.icount(0),
        smt.icount(1),
        smt.pick(FetchPolicy::Icount)
    );
    println!(
        "   chain score: thread0={} thread1={} -> pick {}",
        smt.chain_score(0),
        smt.chain_score(1),
        smt.pick(FetchPolicy::ChainLength)
    );
    println!("   (equal icounts tie; chain scores expose which thread is serialized)");

    // 3. Selective value prediction: the DDT dependent counters supply the
    // chain-length criterion Calder et al. assumed but had no hardware
    // for; the filter concentrates prediction bandwidth on the
    // instructions whose early resolution unblocks the most work.
    println!("\n== 3. selective value prediction (Calder-style filter) ==");
    for threshold in [0u32, 3] {
        let mut vp = SelectiveValuePredictor::new(window, phys as usize, threshold);
        let mut rn = MiniRename::new(phys);
        let mut pending: std::collections::VecDeque<u64> = Default::default();
        for d in Emulator::new(Benchmark::M88ksim.program(9)).take(40_000) {
            if d.dest.is_none() {
                continue;
            }
            let (op, _) = rn.rename(&d);
            if pending.len() == window {
                vp.resolve_oldest(pending.pop_front().expect("non-empty"));
            }
            vp.insert(d.byte_pc(), &op);
            pending.push_back(d.result);
        }
        let s = vp.stats();
        println!(
            "   threshold {threshold}: predicts {:>5.1}% of value producers (last-value accuracy {:>4.1}%)",
            s.coverage() * 100.0,
            s.accuracy() * 100.0
        );
    }

    // 4. Branch-decoupled (BEX) slices.
    println!("\n== 4. branch-decoupled execution slices ==");
    let mut bex = BexExtractor::new(window, phys as usize);
    let mut rn = MiniRename::new(phys);
    let mut densities = Vec::new();
    let mut occupancy = 0usize;
    for d in Emulator::new(Benchmark::M88ksim.program(10)).take(5_000) {
        let (op, _) = rn.rename(&d);
        if d.is_branch() {
            let slice = bex.slice(op.srcs);
            if slice.window > 0 {
                densities.push(slice.density());
            }
        }
        if occupancy == window {
            bex.commit_oldest();
        } else {
            occupancy += 1;
        }
        bex.insert(&op);
    }
    let avg = densities.iter().sum::<f64>() / densities.len() as f64;
    println!(
        "   mean branch slice density: {:.1}% of the window ({} branches)",
        avg * 100.0,
        densities.len()
    );
    println!("   (the BEX engine executes only this slice, so it runs ahead)");

    // 5. Criticality / parallelism estimation.
    println!("\n== 5. criticality and window parallelism ==");
    for bench in [Benchmark::Li, Benchmark::Ijpeg] {
        let mut crit = CriticalityEstimator::new(window, phys as usize);
        let mut rn = MiniRename::new(phys);
        let mut occupancy = 0usize;
        let mut estimates = Vec::new();
        for d in Emulator::new(bench.program(11)).take(5_000) {
            let (op, _) = rn.rename(&d);
            if occupancy == window {
                crit.commit_oldest();
            } else {
                occupancy += 1;
            }
            crit.insert(&op);
            estimates.push(crit.parallelism_estimate());
        }
        let avg = estimates.iter().sum::<f64>() / estimates.len() as f64;
        println!("   {bench:<8} mean window parallelism estimate: {avg:.1}");
    }
}

//! Branch anatomy: per-static-branch profile of a workload under the ARVI
//! configuration — which branches ARVI wins, their class mix, and how
//! stable their value signatures are.
//!
//! Run with: `cargo run --release --example branch_anatomy [benchmark]`

use arvi::isa::Emulator;
use arvi::sim::{Depth, Machine, PredictorConfig, SimParams};
use arvi::workloads::Benchmark;

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "m88ksim".into());
    let bench = Benchmark::from_name(&name).expect("unknown benchmark");
    let mut m = Machine::new(
        Emulator::new(bench.program(42)),
        SimParams::for_depth(Depth::D20),
        PredictorConfig::ArviCurrent,
    );
    m.run_until_committed(50_000); // warm
    m.enable_profiling();
    m.run_until_committed(450_000);

    let mut rows: Vec<_> = m.profile().expect("enabled").iter().collect();
    rows.sort_by_key(|(_, p)| std::cmp::Reverse(p.total - p.final_correct));
    println!(
        "{:>8} {:>8} {:>7} {:>7} {:>7} {:>7} {:>6} {:>5}",
        "pc", "execs", "final%", "l1%", "hit%", "load%", "ovr", "sigs"
    );
    for (pc, p) in rows.iter().take(15) {
        println!(
            "{:>8x} {:>8} {:>7.2} {:>7.2} {:>7.2} {:>7.2} {:>6} {:>5}",
            pc,
            p.total,
            100.0 * p.final_correct as f64 / p.total as f64,
            100.0 * p.l1_correct as f64 / p.total as f64,
            100.0 * p.bvit_hits as f64 / p.total as f64,
            100.0 * p.load_class as f64 / p.total as f64,
            p.overrides,
            p.signatures.len()
        );
    }
}

//! Walks through the paper's worked examples: the DDT update of Figure 1
//! and the RSE register-set extraction of Figure 3, printing each chain.
//!
//! Run with: `cargo run --example dependence_inspector`

use arvi::core::{DdtConfig, PhysReg, RenamedOp, Tracker, TrackerConfig};

fn main() {
    let p = PhysReg;
    let mut t = Tracker::new(TrackerConfig {
        ddt: DdtConfig {
            slots: 9,
            phys_regs: 10,
        },
        track_dependents: true,
    });

    // The paper's example program (Figures 1 and 3):
    let program: [(&str, RenamedOp); 6] = [
        ("load p1 (p2)", RenamedOp::load(p(1), Some(p(2)))),
        (
            "add  p4 = p1 + p3",
            RenamedOp::alu(p(4), [Some(p(1)), Some(p(3))]),
        ),
        (
            "or   p5 = p4 | p1",
            RenamedOp::alu(p(5), [Some(p(4)), Some(p(1))]),
        ),
        (
            "sub  p6 = p5 - p4",
            RenamedOp::alu(p(6), [Some(p(5)), Some(p(4))]),
        ),
        ("add  p7 = p1 + 1", RenamedOp::alu(p(7), [Some(p(1)), None])),
        (
            "add  p8 = p4 + p7",
            RenamedOp::alu(p(8), [Some(p(4)), Some(p(7))]),
        ),
    ];
    println!("inserting the paper's example instructions:\n");
    for (text, op) in &program {
        let slot = t.insert(op);
        println!("  [{}] {}", slot.index() + 1, text);
    }

    println!("\ndependence chains (DDT rows, instruction entries 1-based):");
    for reg in [4u16, 5, 6, 7, 8] {
        let chain = t.chain(&[p(reg)]);
        let members: Vec<String> = chain
            .slots()
            .map(|s| format!("{}", s.index() + 1))
            .collect();
        println!("  DDT[p{reg}] = {{{}}}", members.join(", "));
    }

    println!("\nRSE extraction for `beq p8, 0` (paper Figure 3):");
    let set = t.leaf_set([Some(p(8)), None]);
    let regs: Vec<String> = set.regs.iter().map(|r| r.to_string()).collect();
    println!(
        "  register set  = {{{}}}  (paper: {{p1, p3}})",
        regs.join(", ")
    );
    println!(
        "  chain length  = {} instructions (1, 2, 5, 6)",
        set.chain_len
    );
    println!(
        "  depth key     = {} (branch at entry 7 spans back to the load)",
        set.depth_key(6, 5)
    );

    println!("\ntrailing-dependent counters (Section 3 scheduling extension):");
    for slot in 0..6u32 {
        println!(
            "  instruction {} has {} in-flight dependents",
            slot + 1,
            t.dependents(arvi::core::InstSlot(slot))
        );
    }
}

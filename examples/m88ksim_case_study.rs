//! The paper's Figure 7 case study: m88ksim's `lookupdisasm` hash-chain
//! walk, whose loop-exit branch is fully determined by the lookup key.
//!
//! This example reproduces the Section 6 narrative: "the history-based
//! hybrid predictor has difficulty in predicting the exit because the
//! condition is not strongly correlated with history", while ARVI — with
//! the key's value in its index and the iteration count embodied in the
//! chain-depth tag — resolves it nearly perfectly.
//!
//! Run with: `cargo run --release --example m88ksim_case_study`

use arvi::isa::Emulator;
use arvi::sim::{Depth, Machine, PredictorConfig, SimParams};
use arvi::workloads::Benchmark;

fn profile(config: PredictorConfig) -> (f64, f64, f64) {
    let mut m = Machine::new(
        Emulator::new(Benchmark::M88ksim.program(42)),
        SimParams::for_depth(Depth::D20),
        config,
    );
    m.run_until_committed(100_000);
    m.enable_profiling();
    let start = m.stats().clone();
    m.run_until_committed(500_000);
    let window = m.stats().since(&start);

    // The star branches compare a loaded opcode (T1) against a pipelined
    // key register: they are the `beq T1, key` sites of the three unrolled
    // lookups. Find them as the branches with the worst L1 accuracy among
    // high-traffic sites.
    let mut star_total = 0u64;
    let mut star_final = 0u64;
    let mut star_l1 = 0u64;
    let mut rows: Vec<_> = m.profile().expect("profiling enabled").iter().collect();
    rows.sort_by_key(|(_, p)| std::cmp::Reverse(p.total));
    for (_, p) in rows.iter().take(24) {
        let l1_rate = p.l1_correct as f64 / p.total as f64;
        if l1_rate < 0.9 && p.total > 1000 {
            star_total += p.total;
            star_final += p.final_correct;
            star_l1 += p.l1_correct;
        }
    }
    (
        window.cond_branches.rate(),
        star_final as f64 / star_total.max(1) as f64,
        star_l1 as f64 / star_total.max(1) as f64,
    )
}

fn main() {
    println!("m88ksim `lookupdisasm` case study (paper Figure 7), 20-stage pipeline\n");
    println!(
        "{:<22} {:>10} {:>22}",
        "config", "overall", "hash-walk exits"
    );
    for config in [PredictorConfig::TwoLevelGskew, PredictorConfig::ArviCurrent] {
        let (overall, star, star_l1) = profile(config);
        println!(
            "{:<22} {:>9.2}% {:>14.2}% (L1 alone: {:.2}%)",
            config.label(),
            overall * 100.0,
            star * 100.0,
            star_l1 * 100.0
        );
    }
    println!(
        "\nThe exit position of the while loop varies per key, starving history\n\
         predictors; ARVI keys its prediction on the key VALUE plus the chain\n\
         depth tag, which counts the loop iteration — so the same (key,\n\
         iteration) signature always predicts the recorded outcome."
    );
}

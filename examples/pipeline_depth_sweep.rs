//! Sweeps pipeline depth (the paper's 20/40/60-stage axis) for one
//! benchmark, showing how the misprediction penalty amplifies ARVI's
//! accuracy advantage — the mechanism behind Figure 6's depth trend.
//!
//! Run with: `cargo run --release --example pipeline_depth_sweep [benchmark]`

use arvi::sim::{simulate, Depth, PredictorConfig, SimParams};
use arvi::workloads::Benchmark;

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "li".into());
    let bench = Benchmark::from_name(&name).expect("unknown benchmark");
    println!("benchmark: {bench}\n");
    println!(
        "{:<10} {:>14} {:>14} {:>12} {:>14}",
        "depth", "baseline IPC", "ARVI IPC", "speedup", "load-branch %"
    );
    for depth in Depth::all() {
        let base = simulate(
            bench.program(42),
            SimParams::for_depth(depth),
            PredictorConfig::TwoLevelGskew,
            50_000,
            300_000,
        );
        let arvi = simulate(
            bench.program(42),
            SimParams::for_depth(depth),
            PredictorConfig::ArviCurrent,
            50_000,
            300_000,
        );
        println!(
            "{:<10} {:>14.3} {:>14.3} {:>11.1}% {:>13.1}%",
            depth.to_string(),
            base.ipc(),
            arvi.ipc(),
            (arvi.ipc() / base.ipc() - 1.0) * 100.0,
            arvi.load_branch_fraction() * 100.0
        );
    }
    println!(
        "\nDeeper pipelines raise the misprediction penalty AND the fraction of\n\
         load branches (values pending on outstanding loads at prediction\n\
         time) — both effects the paper reports in Figures 5(a) and 6."
    );
}

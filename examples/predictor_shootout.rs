//! Compares the baseline direction predictors (bimodal, gshare, local,
//! 2Bc-gskew) head-to-head on every benchmark's branch stream, using
//! immediate updates (pure predictor quality, no pipeline effects).
//!
//! Run with: `cargo run --release --example predictor_shootout`

use arvi::isa::Emulator;
use arvi::predict::{Bimodal, DirectionPredictor, Gshare, GskewConfig, Local, TwoBcGskew};
use arvi::workloads::Benchmark;

fn main() {
    const N: usize = 300_000;
    println!(
        "{:<10} {:>9} {:>9} {:>9} {:>11}   (accuracy over ~{}k-instruction traces)",
        "benchmark",
        "bimodal",
        "gshare",
        "local",
        "2Bc-gskew",
        N / 1000
    );
    for bench in Benchmark::all() {
        let stream: Vec<(u64, bool)> = Emulator::new(bench.program(42))
            .take(N)
            .filter(|d| d.is_branch())
            .map(|d| (d.byte_pc(), d.branch.expect("is_branch").taken))
            .collect();

        let score = |p: &mut dyn DirectionPredictor| -> f64 {
            // A trait-object-friendly rerun of `run_immediate`.
            let mut correct = 0u64;
            for &(pc, taken) in &stream {
                let pred = p.predict(pc);
                p.spec_push(taken);
                p.update(pc, &pred, taken);
                correct += (pred.taken == taken) as u64;
            }
            correct as f64 / stream.len() as f64
        };
        let mut bimodal = Bimodal::new(12);
        let mut gshare = Gshare::new(12, 10);
        let mut local = Local::new(10, 8, 14);
        let mut gskew = TwoBcGskew::new(GskewConfig::level1());
        println!(
            "{:<10} {:>8.2}% {:>8.2}% {:>8.2}% {:>10.2}%",
            bench.name(),
            score(&mut bimodal) * 100.0,
            score(&mut gshare) * 100.0,
            score(&mut local) * 100.0,
            score(&mut gskew) * 100.0,
        );
    }
    println!("\n2Bc-gskew (the paper's EV8-style hybrid) should lead or tie on most rows.");
}

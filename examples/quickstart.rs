//! Quickstart: simulate one benchmark under the baseline and ARVI
//! predictors and compare accuracy and IPC.
//!
//! Run with: `cargo run --release --example quickstart`

use arvi::sim::{simulate, Depth, PredictorConfig, SimParams};
use arvi::workloads::Benchmark;

fn main() {
    let bench = Benchmark::M88ksim;
    let (warmup, measure) = (50_000, 400_000);
    println!("benchmark: {bench}, 20-stage pipeline, {measure} measured instructions\n");
    for config in [PredictorConfig::TwoLevelGskew, PredictorConfig::ArviCurrent] {
        let r = simulate(
            bench.program(42),
            SimParams::for_depth(Depth::D20),
            config,
            warmup,
            measure,
        );
        println!(
            "{:<20} accuracy {:>6.2}%   IPC {:>5.3}   load-branch frac {:>5.1}%  (l1-only {:>6.2}%)",
            r.config.label(),
            r.accuracy() * 100.0,
            r.ipc(),
            r.load_branch_fraction() * 100.0,
            r.window.l1_only.rate() * 100.0,
        );
    }
}

//! The synthetic-scenario workflow, end to end: parse a plain-text spec,
//! stream it live into the timing simulator, record it once and replay
//! it bit-identically, then reproduce the paper-style separation — a
//! data-dependent-branch scenario the ARVI path wins, next to a
//! fixed-bias scenario where every predictor converges.
//!
//! Run with: `cargo run --release --example synthetic_scenarios`

use std::sync::Arc;

use arvi::sim::{intern_name, simulate_source, Depth, PredictorConfig, SimParams};
use arvi::synth::{record_trace, ScenarioSpec, SynthSource};
use arvi::trace::TraceReplayer;

fn main() {
    let (warmup, measure) = (15_000u64, 60_000u64);
    let params = SimParams::for_depth(Depth::D20);

    // 1. A scenario is one line of text: branch-behavior class plus
    //    dependence-topology and memory-pattern knobs.
    let datadep: ScenarioSpec =
        "demo-datadep branch=datadep:64 chain=4 fanout=2 gap=16 mem=stride:16"
            .parse()
            .expect("valid spec");
    let bias: ScenarioSpec = "demo-bias branch=bias:100".parse().expect("valid spec");
    println!("== scenarios ==");
    println!("{datadep}");
    println!("{bias}\n");

    // 2. Live streaming: the generated program runs on the functional
    //    emulator and feeds the simulator through `InstSource`, exactly
    //    like a suite benchmark.
    println!("== live: baseline vs ARVI (20-stage) ==");
    println!(
        "{:<14} {:>14} {:>14}",
        "scenario", "2-level gskew", "arvi current"
    );
    let mut live_datadep_arvi = None;
    for spec in [&datadep, &bias] {
        let mut row = Vec::new();
        for config in [PredictorConfig::TwoLevelGskew, PredictorConfig::ArviCurrent] {
            let r = simulate_source(
                intern_name(&spec.name),
                SynthSource::new(spec, 42),
                params.clone(),
                config,
                warmup,
                measure,
            );
            if spec.name == datadep.name && config == PredictorConfig::ArviCurrent {
                live_datadep_arvi = Some(r.clone());
            }
            row.push(r.accuracy());
        }
        println!(
            "{:<14} {:>13.2}% {:>13.2}%",
            spec.name,
            row[0] * 100.0,
            row[1] * 100.0
        );
    }

    // 3. Record once, replay many: the same scenario written through the
    //    trace subsystem replays bit-identically.
    println!("\n== record once, replay bit-identically ==");
    let trace = Arc::new(record_trace(&datadep, 42, warmup + measure + 4_096));
    println!(
        "{}: {} instructions recorded ({:.2} B/inst)",
        trace.name(),
        trace.len(),
        trace.encoded_bytes() as f64 / trace.len() as f64
    );
    let replay = simulate_source(
        intern_name(trace.name()),
        TraceReplayer::new(Arc::clone(&trace)),
        params,
        PredictorConfig::ArviCurrent,
        warmup,
        measure,
    );
    let live = live_datadep_arvi.expect("measured above");
    assert_eq!(
        (live.window.cycles, live.window.cond_branches.correct()),
        (replay.window.cycles, replay.window.cond_branches.correct()),
        "replay diverged from live generation"
    );
    println!(
        "replay matches live generation: {} cycles, {:.2}% accuracy",
        replay.window.cycles,
        replay.accuracy() * 100.0
    );

    println!(
        "\nthe same scenarios run from the experiment binaries:\n  \
         cargo run --release -p arvi-bench --bin fig6 -- --scenario datadep-deep\n  \
         cargo run --release -p arvi-bench --bin synth_report -- --quick"
    );
}

//! The record-once / replay-many workflow, end to end: record a short
//! m88ksim trace, persist it to disk, reload + verify it, then replay
//! it through the timing simulator under every predictor configuration
//! and check the results match live emulation exactly.
//!
//! Run with: `cargo run --release --example trace_roundtrip`

use std::sync::Arc;

use arvi::isa::Emulator;
use arvi::sim::{intern_name, simulate, simulate_source, Depth, PredictorConfig, SimParams};
use arvi::trace::{Trace, TraceReader, TraceReplayer};
use arvi::workloads::Benchmark;

fn main() {
    let bench = Benchmark::M88ksim;
    let seed = 42;
    let (warmup, measure) = (20_000u64, 60_000u64);
    // Record past the window: the machine fetches ahead of commit by up
    // to the ROB size, so give the replayed stream the same slack the
    // sweep harness uses.
    let recorded = warmup + measure + 4_096;

    println!("== record ==");
    let emu = Emulator::new(bench.program(seed));
    let trace = Trace::record(emu, recorded, bench.name(), seed);
    println!(
        "{}: {} instructions -> {} encoded bytes ({:.2} B/inst, {} chunks)",
        bench,
        trace.len(),
        trace.encoded_bytes(),
        trace.encoded_bytes() as f64 / trace.len() as f64,
        trace.chunk_count(),
    );

    println!("\n== persist / reload ==");
    let dir = std::env::temp_dir().join("arvi-trace-roundtrip");
    std::fs::create_dir_all(&dir).expect("create temp dir");
    let path = dir.join(format!("{}-s{seed}.arvitrace", bench.name()));
    trace.write_to(&path).expect("write trace");
    let reloaded = Arc::new(Trace::read_from(&path).expect("reload trace (fully verified)"));
    println!(
        "{} ({} bytes on disk) reloaded and checksum-verified",
        path.display(),
        std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0),
    );

    // The footer index makes the recording seekable: hop straight past
    // the warmup prefix without decoding it.
    let mut reader = TraceReader::new(&reloaded);
    reader.fast_forward(warmup);
    let first_measured = reader.next().expect("record past warmup");
    println!(
        "fast-forward past warmup: first measured record is seq {} at pc {}",
        first_measured.seq, first_measured.pc
    );

    println!("\n== replay vs live emulation (20-stage) ==");
    println!(
        "{:<20} {:>10} {:>10} {:>12} {:>12}  match",
        "config", "live IPC", "replay IPC", "live acc", "replay acc"
    );
    for config in PredictorConfig::all() {
        let live = simulate(
            bench.program(seed),
            SimParams::for_depth(Depth::D20),
            config,
            warmup,
            measure,
        );
        let replay = simulate_source(
            intern_name(reloaded.name()),
            TraceReplayer::new(Arc::clone(&reloaded)),
            SimParams::for_depth(Depth::D20),
            config,
            warmup,
            measure,
        );
        let identical = live.window.cycles == replay.window.cycles
            && live.window.committed == replay.window.committed
            && live.window.cond_branches.correct() == replay.window.cond_branches.correct();
        println!(
            "{:<20} {:>10.3} {:>10.3} {:>11.2}% {:>11.2}%  {}",
            config.label(),
            live.ipc(),
            replay.ipc(),
            live.accuracy() * 100.0,
            replay.accuracy() * 100.0,
            if identical {
                "bit-identical"
            } else {
                "DIVERGED"
            },
        );
        assert!(identical, "replay diverged from live emulation");
    }

    std::fs::remove_dir_all(&dir).ok();
    println!("\nrecord once, replay many: one functional execution fed all four configurations.");
}

//! # arvi — umbrella crate
//!
//! Re-exports the full workspace of the reproduction of *"Dynamic Data
//! Dependence Tracking and its Application to Branch Prediction"* (Chen,
//! Dropsho & Albonesi, HPCA 2003).
//!
//! * [`isa`] — RISC ISA model, program builder and architectural emulator.
//! * [`workloads`] — synthetic SPEC95-integer-like benchmark programs.
//! * [`predict`] — baseline predictors (bimodal, gshare, 2Bc-gskew,
//!   confidence estimation).
//! * [`core`] — the paper's contribution: DDT, RSE, BVIT and the ARVI
//!   predictor.
//! * [`sim`] — the trace-driven out-of-order timing simulator.
//! * [`trace`] — record-once / replay-many committed-instruction traces
//!   (compact chunked binary format with checksums and a seekable
//!   index).
//! * [`synth`] — seeded synthetic-workload scenarios: plain-text specs
//!   with dependence-topology, branch-behavior-class and memory-pattern
//!   knobs, runnable anywhere a benchmark runs.
//! * [`sampling`] — SMARTS-style interval sampling over recorded
//!   traces: plans, seek + functional-warmup + detailed-measurement
//!   units fanned out across cores, CI-carrying aggregation. See README
//!   "Sampled simulation".
//! * [`stats`] — accuracy/IPC statistics and table formatting.
//! * [`obs`] — the zero-cost probe seam and telemetry consumers
//!   (counter/histogram probe, per-branch-site attribution, Chrome-trace
//!   event tracer). See README "Observability".
//! * [`apps`] — Section-3 applications of on-line dependence tracking.
//!
//! The per-instruction hot path (DDT insert, chain reads, leaf-set
//! extraction, ARVI predict/train) is steady-state allocation-free:
//! reuse the in-place APIs ([`core::Ddt::chain_into`],
//! [`core::Tracker::leaf_set_into`]) with caller-held scratch, or the
//! allocating wrappers when convenience wins. Experiment sweeps run in
//! parallel via `arvi_bench::sweep` (deterministic: results are
//! bit-identical to a sequential run). See `PERFORMANCE.md` for measured
//! numbers and `BENCH_PR1.json` for the machine-readable trail.
//!
//! See `README.md` for a quickstart and `DESIGN.md` for the system
//! inventory and experiment index.

pub use arvi_apps as apps;
pub use arvi_core as core;
pub use arvi_isa as isa;
pub use arvi_obs as obs;
pub use arvi_predict as predict;
pub use arvi_sampling as sampling;
pub use arvi_sim as sim;
pub use arvi_stats as stats;
pub use arvi_synth as synth;
pub use arvi_trace as trace;
pub use arvi_workloads as workloads;

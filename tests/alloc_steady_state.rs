//! Allocation-count regression tests: the per-instruction hot path —
//! DDT insert/commit, chain reads via `chain_into`, leaf-set extraction
//! via `leaf_set_into`, full ARVI predict/train, and the whole timing
//! machine's cycle loop (calendar-queue scheduler included) — must be
//! steady-state heap-allocation-free.
//!
//! A counting global allocator records every allocation; each check
//! warms its structure past any lazy growth (RegList spill capacity,
//! etc.), then asserts zero allocations across a long steady-state run.
//!
//! This binary runs with `harness = false` (see the `[[test]]` section
//! of the root `Cargo.toml`): the allocation counter is process-global,
//! and libtest's own threads would otherwise allocate (test spawning,
//! output capture) inside a measured window and flake the zero
//! assertions. A plain sequential `main` owns the whole process.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use arvi::core::{
    ArviConfig, ArviPredictor, ChainMask, CurrentValues, Ddt, DdtConfig, LeafSet, PhysReg,
    RenamedOp, Tracker, TrackerConfig,
};
use arvi::isa::Reg;

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Runs `f` and returns the number of heap allocations it performed.
fn allocations_during<F: FnOnce()>(f: F) -> u64 {
    let before = ALLOCS.load(Ordering::Relaxed);
    f();
    ALLOCS.load(Ordering::Relaxed) - before
}

fn ddt_insert_commit_chain_is_allocation_free() {
    let mut ddt = Ddt::new(DdtConfig {
        slots: 80,
        phys_regs: 72,
    });
    let mut mask = ChainMask::zeroed(80);
    let dest = |i: u32| PhysReg((i % 70) as u16);
    // Warm: fill the window once.
    for i in 0..80u32 {
        ddt.insert(Some(dest(i)), [Some(dest(i + 1)), None]);
    }
    let n = allocations_during(|| {
        for i in 80..10_080u32 {
            ddt.commit_oldest();
            ddt.insert(Some(dest(i)), [Some(dest(i + 1)), Some(dest(i + 7))]);
            ddt.chain_into(&[dest(i)], &mut mask);
            std::hint::black_box(mask.len());
        }
    });
    assert_eq!(n, 0, "DDT steady state allocated {n} times in 10k iters");
}

fn tracker_insert_and_leaf_set_into_are_allocation_free() {
    let mut t = Tracker::new(TrackerConfig {
        ddt: DdtConfig {
            slots: 64,
            phys_regs: 128,
        },
        track_dependents: true,
    });
    let mut out = LeafSet::default();
    let p = |i: u32| PhysReg((i % 120) as u16);
    for i in 0..64u32 {
        t.insert(&RenamedOp::alu(p(i), [Some(p(i + 1)), None]));
    }
    let n = allocations_during(|| {
        for i in 64..5_064u32 {
            t.commit_oldest();
            let op = if i % 6 == 0 {
                RenamedOp::load(p(i), Some(p(i + 1)))
            } else {
                RenamedOp::alu(p(i), [Some(p(i + 1)), Some(p(i + 13))])
            };
            t.insert(&op);
            t.leaf_set_into([Some(p(i)), Some(p(i + 3))], &mut out);
            std::hint::black_box(out.regs.len());
        }
    });
    assert_eq!(n, 0, "Tracker steady state allocated {n} times in 5k iters");
}

fn arvi_predict_train_cycle_is_allocation_free() {
    let mut arvi = ArviPredictor::new(ArviConfig::paper(TrackerConfig {
        ddt: DdtConfig {
            slots: 64,
            phys_regs: 128,
        },
        track_dependents: false,
    }));
    let p = |i: u32| PhysReg((i % 120) as u16);
    let logical = |i: u32| Reg::new((8 + i % 16) as u8);
    // Warm: a full rename/writeback/predict/train/commit cycle so every
    // lazily grown buffer reaches its high-water mark.
    let drive = |arvi: &mut ArviPredictor, rounds: std::ops::Range<u32>| {
        for i in rounds {
            if arvi.tracker().occupancy() >= 60 {
                arvi.commit_oldest();
            }
            let op = if i % 7 == 0 {
                RenamedOp::load(p(i), Some(p(i + 1)))
            } else {
                RenamedOp::alu(p(i), [Some(p(i + 1)), Some(p(i + 5))])
            };
            arvi.rename(&op, Some(logical(i)));
            arvi.writeback(p(i), (i as u64).wrapping_mul(2654435761));
            let pred = arvi.predict(
                0x400 + (i % 32) as u64 * 4,
                [Some(p(i)), Some(p(i + 2))],
                &CurrentValues,
            );
            arvi.train(&pred, i % 3 == 0, true);
        }
    };
    drive(&mut arvi, 0..500);
    let n = allocations_during(|| drive(&mut arvi, 500..5_500));
    assert_eq!(
        n, 0,
        "ARVI predict/train steady state allocated {n} times in 5k iters"
    );
}

fn trace_replay_is_allocation_free() {
    use arvi::isa::Emulator;
    use arvi::trace::{TraceReplayer, TraceWriter};
    use arvi::workloads::Benchmark;
    use std::sync::Arc;

    // Small chunks so the steady-state window crosses many chunk
    // boundaries.
    let emu = Emulator::new(Benchmark::M88ksim.program(42));
    let mut w = TraceWriter::new("m88ksim", 42).with_chunk_insts(256);
    for d in emu.take(20_000) {
        w.push(d);
    }
    let trace = Arc::new(w.finish());
    let mut replayer = TraceReplayer::new(Arc::clone(&trace));
    // Warm: the first chunk decode grows the reusable buffer once.
    for _ in 0..512 {
        replayer.next();
    }
    let n = allocations_during(|| {
        for _ in 512..20_000 {
            std::hint::black_box(replayer.next());
        }
    });
    assert_eq!(n, 0, "trace replay steady state allocated {n} times");
}

fn synth_generation_is_allocation_free() {
    use arvi::sim::InstSource;
    use arvi::synth::{ScenarioSpec, SynthSource};

    // Every generator feature at once: datadep values, a deep fanned-out
    // chain, dead writes, pointer chasing.
    let spec: ScenarioSpec = "alloc branch=datadep:64 chain=6 fanout=3 dead=4 gap=12 mem=chase:256"
        .parse()
        .expect("valid spec");
    let mut src = SynthSource::new(&spec, 42);
    // Warm: program decode and the emulator's lazily grown state.
    for _ in 0..2_000 {
        src.next_inst();
    }
    let n = allocations_during(|| {
        for _ in 0..50_000 {
            std::hint::black_box(src.next_inst());
        }
    });
    assert_eq!(
        n, 0,
        "synthetic generation steady state allocated {n} times in 50k insts"
    );
}

fn branch_unit_predict_train_is_allocation_free() {
    use arvi::sim::{BranchUnit, Depth, PredictorConfig, SimParams};

    // The whole branch-path data flow — packed-table reads, the
    // index-carrying BranchDecision, confidence slots and commit-time
    // training — must not allocate per branch, for the inline hybrid L2
    // and the ARVI L2 alike. Construction (table allocation, and the
    // ARVI variant's Box) happens exactly once, outside the measured
    // window: the PR 5 unboxing of `Level2::Hybrid` removed the last
    // steady-state-adjacent heap object on this path.
    for config in [PredictorConfig::TwoLevelGskew, PredictorConfig::ArviCurrent] {
        let mut p = SimParams::for_depth(Depth::D20);
        p.rob_entries = 32;
        p.phys_regs = 128;
        let mut bu = BranchUnit::new(&p, config);
        let mut lfsr: u64 = 0xACE1;
        let mut drive = |bu: &mut BranchUnit, rounds: u32| {
            for _ in 0..rounds {
                lfsr = lfsr.wrapping_mul(6364136223846793005).wrapping_add(1);
                let pc = ((lfsr >> 20) & 0x3FF) << 2;
                let taken = (lfsr >> 40) & 0b11 != 0;
                let d = bu.decide(pc, [None, None], &CurrentValues, taken);
                bu.commit_branch(pc, &d, taken);
                std::hint::black_box(d.final_taken);
            }
        };
        drive(&mut bu, 2_000);
        let n = allocations_during(|| drive(&mut bu, 20_000));
        assert_eq!(
            n, 0,
            "branch unit ({config:?}) allocated {n} times in 20k predict/train rounds"
        );
    }
}

fn machine_cycle_loop_is_allocation_free() {
    use arvi::sim::{Machine, PredictorConfig, SimParams};
    use arvi::synth::SynthSource;

    // The whole cycle model — calendar queue, SoA ROB, decision FIFO,
    // sorted-vec memory ordering, rename wait lists — must reach a
    // steady state where no step allocates: wheel buckets, scratch
    // buffers and wait lists are all reused. A scenario with branches,
    // loads, stores and dependence chains exercises every scheduler
    // path; modest chain/fanout knobs keep ARVI leaf sets inside the
    // RegList inline capacity (a leaf-set spill is a real allocation,
    // not scheduler churn).
    for config in [PredictorConfig::TwoLevelGskew, PredictorConfig::ArviCurrent] {
        let spec: arvi::synth::ScenarioSpec =
            "alloc-machine branch=datadep:16 chain=2 fanout=1 dead=1 gap=8 mem=stride:16"
                .parse()
                .expect("valid spec");
        let src = SynthSource::new(&spec, 42);
        let mut m = Machine::new(src, SimParams::for_depth(arvi::sim::Depth::D20), config);
        // Warm: fill the ROB, wheel buckets, wait lists and predictor
        // paths past every lazy high-water mark.
        m.run_until_committed(150_000);
        let n = allocations_during(|| {
            m.run_until_committed(250_000);
        });
        assert_eq!(
            n, 0,
            "machine ({config:?}) steady state allocated {n} times in 100k insts"
        );
    }
}

fn counter_probe_machine_cycle_loop_is_allocation_free() {
    use arvi::obs::CounterProbe;
    use arvi::sim::{Machine, PredictorConfig, SimParams};
    use arvi::synth::SynthSource;

    // The probe seam with its heaviest always-on consumer attached:
    // CounterProbe fires on every cycle, fetch, issue, writeback, commit
    // and branch resolve, and its histograms are inline arrays — so the
    // probed machine must be exactly as allocation-free in steady state
    // as the bare one above. Same scenario string as the bare check: the
    // scenario name seeds the generated program, and this one is known
    // to reach its wait-list high-water marks within the warmup.
    let spec: arvi::synth::ScenarioSpec =
        "alloc-machine branch=datadep:16 chain=2 fanout=1 dead=1 gap=8 mem=stride:16"
            .parse()
            .expect("valid spec");
    let src = SynthSource::new(&spec, 42);
    let mut m = Machine::with_probe(
        src,
        SimParams::for_depth(arvi::sim::Depth::D20),
        PredictorConfig::ArviCurrent,
        CounterProbe::new(),
    );
    m.run_until_committed(150_000);
    let n = allocations_during(|| {
        m.run_until_committed(250_000);
    });
    assert_eq!(
        n, 0,
        "probed machine steady state allocated {n} times in 100k insts"
    );
    let probe = m.into_probe();
    assert!(probe.cycles > 0 && probe.committed >= 250_000);
}

fn main() {
    let checks: [(&str, fn()); 8] = [
        (
            "branch_unit_predict_train_is_allocation_free",
            branch_unit_predict_train_is_allocation_free,
        ),
        (
            "ddt_insert_commit_chain_is_allocation_free",
            ddt_insert_commit_chain_is_allocation_free,
        ),
        (
            "tracker_insert_and_leaf_set_into_are_allocation_free",
            tracker_insert_and_leaf_set_into_are_allocation_free,
        ),
        (
            "arvi_predict_train_cycle_is_allocation_free",
            arvi_predict_train_cycle_is_allocation_free,
        ),
        (
            "trace_replay_is_allocation_free",
            trace_replay_is_allocation_free,
        ),
        (
            "synth_generation_is_allocation_free",
            synth_generation_is_allocation_free,
        ),
        (
            "machine_cycle_loop_is_allocation_free",
            machine_cycle_loop_is_allocation_free,
        ),
        (
            "counter_probe_machine_cycle_loop_is_allocation_free",
            counter_probe_machine_cycle_loop_is_allocation_free,
        ),
    ];
    for (name, check) in checks {
        check();
        println!("alloc_steady_state: {name} ... ok");
    }
}

//! Property-based tests of the dependence-tracking core against
//! independent reference models.

use arvi::core::{ChainMask, Ddt, DdtConfig, InstSlot, PhysReg, RenamedOp, Tracker, TrackerConfig};
use proptest::prelude::*;
use std::collections::HashSet;

/// A random in-flight instruction description.
#[derive(Debug, Clone)]
struct OpDesc {
    dest: u16,
    src1: Option<u16>,
    src2: Option<u16>,
    is_load: bool,
}

fn op_strategy(phys_regs: u16) -> impl Strategy<Value = OpDesc> {
    (
        1..phys_regs,
        proptest::option::of(0..phys_regs),
        proptest::option::of(0..phys_regs),
        any::<bool>(),
    )
        .prop_map(|(dest, src1, src2, is_load)| OpDesc {
            dest,
            src1,
            src2,
            is_load,
        })
}

/// Reference model: recompute every register's chain as the transitive
/// closure of producer edges over live (inserted, not committed)
/// instructions.
#[derive(Default)]
struct RefModel {
    /// Per register: the set of live instruction ids it depends on.
    reg_chain: std::collections::HashMap<u16, HashSet<u64>>,
    /// Live instruction ids.
    live: HashSet<u64>,
    fifo: std::collections::VecDeque<u64>,
    next_id: u64,
}

impl RefModel {
    fn insert(&mut self, op: &OpDesc) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        let mut chain = HashSet::new();
        for src in [op.src1, op.src2].into_iter().flatten() {
            if let Some(c) = self.reg_chain.get(&src) {
                chain.extend(c.iter().filter(|i| self.live.contains(i)).copied());
            }
        }
        chain.insert(id);
        self.reg_chain.insert(op.dest, chain);
        self.live.insert(id);
        self.fifo.push_back(id);
        id
    }

    fn commit_oldest(&mut self) {
        let id = self.fifo.pop_front().expect("non-empty");
        self.live.remove(&id);
    }

    /// Squashes every instruction with id >= `new_head` (branch
    /// misprediction recovery); ids restart from `new_head`.
    fn rollback_to(&mut self, new_head: u64) {
        while self.fifo.back().is_some_and(|&id| id >= new_head) {
            let id = self.fifo.pop_back().expect("checked back");
            self.live.remove(&id);
        }
        self.next_id = new_head;
    }

    fn chain(&self, reg: u16) -> HashSet<u64> {
        self.reg_chain
            .get(&reg)
            .map(|c| {
                c.iter()
                    .filter(|i| self.live.contains(i))
                    .copied()
                    .collect()
            })
            .unwrap_or_default()
    }
}

fn mask_ids(ddt: &Ddt, mask: &ChainMask) -> HashSet<u64> {
    mask.slots().map(|s| ddt.slot_seq(s)).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The DDT's chain reads equal the reference transitive closure at
    /// every step, across arbitrary insert/commit interleavings and slot
    /// reuse.
    #[test]
    fn ddt_matches_transitive_closure(
        ops in proptest::collection::vec(op_strategy(24), 1..120),
        commit_pattern in proptest::collection::vec(0u8..3, 1..120),
    ) {
        let slots = 16usize;
        let mut ddt = Ddt::new(DdtConfig { slots, phys_regs: 24 });
        let mut reference = RefModel::default();

        for (op, commits) in ops.iter().zip(commit_pattern.iter().cycle()) {
            if ddt.is_full() {
                ddt.commit_oldest();
                reference.commit_oldest();
            }
            let srcs = [op.src1.map(PhysReg), op.src2.map(PhysReg)];
            ddt.insert(Some(PhysReg(op.dest)), srcs);
            reference.insert(op);
            for _ in 0..*commits {
                if !ddt.is_empty() && ddt.occupancy() > 1 {
                    ddt.commit_oldest();
                    reference.commit_oldest();
                }
            }
            // Compare the chain of every register that has a producer.
            for reg in 0..24u16 {
                let got = mask_ids(&ddt, &ddt.chain(&[PhysReg(reg)]));
                let want = reference.chain(reg);
                prop_assert_eq!(&got, &want, "register p{} diverged", reg);
            }
        }
    }

    /// The RSE leaf set equals {sources of non-load chain members plus
    /// branch operands} minus {targets of non-load chain members},
    /// recomputed independently.
    #[test]
    fn rse_leaf_set_matches_reference(
        ops in proptest::collection::vec(op_strategy(20), 1..40),
        branch_src in 0u16..20,
    ) {
        let mut t = Tracker::new(TrackerConfig {
            ddt: DdtConfig { slots: 64, phys_regs: 20 },
            track_dependents: false,
        });
        let mut inserted: Vec<OpDesc> = Vec::new();
        for op in &ops {
            t.insert(&RenamedOp {
                dest: Some(PhysReg(op.dest)),
                srcs: [op.src1.map(PhysReg), op.src2.map(PhysReg)],
                is_load: op.is_load,
            });
            inserted.push(op.clone());
        }
        let got: HashSet<u16> = t
            .leaf_set([Some(PhysReg(branch_src)), None])
            .regs
            .iter()
            .map(|r| r.0)
            .collect();

        // Reference: chain membership ids via the tracker's own DDT (the
        // closure property is verified independently above), S/T marks
        // recomputed from the op list.
        let chain = t.chain(&[PhysReg(branch_src)]);
        let member_ids: HashSet<u64> =
            chain.slots().map(|s| t.ddt().slot_seq(s)).collect();
        let mut s_marks: HashSet<u16> = HashSet::new();
        let mut t_marks: HashSet<u16> = HashSet::new();
        for (id, op) in inserted.iter().enumerate() {
            if !member_ids.contains(&(id as u64)) || op.is_load {
                continue;
            }
            s_marks.extend([op.src1, op.src2].into_iter().flatten());
            t_marks.insert(op.dest);
        }
        s_marks.insert(branch_src);
        let want: HashSet<u16> = s_marks.difference(&t_marks).copied().collect();
        prop_assert_eq!(got, want);
    }

    /// The zero-allocation path (`insert` with its fused in-place row
    /// write, plus `chain_into` reusing one mask for every read) matches
    /// the naive reference model across arbitrary interleavings of
    /// inserts, commits and rollbacks.
    ///
    /// Rows last written by a since-squashed instruction are excluded
    /// from the comparison: hardware does not roll row contents back
    /// (the squashed column is merely invalidated and rename recovery
    /// makes the row unreachable), so such rows legitimately diverge
    /// from a transitive-closure reference.
    #[test]
    fn zero_alloc_path_matches_reference_across_rollbacks(
        ops in proptest::collection::vec(op_strategy(24), 1..150),
        actions in proptest::collection::vec((0u8..8, 0.0f64..1.0), 1..150),
    ) {
        let slots = 16usize;
        let mut ddt = Ddt::new(DdtConfig { slots, phys_regs: 24 });
        let mut reference = RefModel::default();
        let mut writer: std::collections::HashMap<u16, u64> =
            std::collections::HashMap::new();
        // Registers whose row was last written by a squashed instruction:
        // excluded until a fresh producer rewrites the row.
        let mut stale: HashSet<u16> = HashSet::new();
        let mut mask = ChainMask::zeroed(slots);

        for (op, (action, frac)) in ops.iter().zip(actions.iter().cycle()) {
            if ddt.is_full() {
                ddt.commit_oldest();
                reference.commit_oldest();
            }
            let seq = ddt.next_seq();
            let srcs = [op.src1.map(PhysReg), op.src2.map(PhysReg)];
            ddt.insert(Some(PhysReg(op.dest)), srcs);
            reference.insert(op);
            writer.insert(op.dest, seq);
            stale.remove(&op.dest);

            match action {
                // Commit up to two of the oldest.
                0 | 1 => {
                    for _ in 0..=(*action) {
                        if ddt.occupancy() > 1 {
                            ddt.commit_oldest();
                            reference.commit_oldest();
                        }
                    }
                }
                // Roll back to a random point in the live window.
                2 => {
                    let (tail, head) = (ddt.tail_seq(), ddt.next_seq());
                    let target = tail + ((head - tail) as f64 * frac) as u64;
                    ddt.rollback_to(target);
                    reference.rollback_to(target);
                    for (&reg, &w) in &writer {
                        if w >= target {
                            stale.insert(reg);
                        }
                    }
                }
                _ => {}
            }

            // Compare every row whose last writer survives; chain_into
            // reuses the same mask throughout, so stale contents from
            // the previous read must never leak.
            for reg in 0..24u16 {
                if stale.contains(&reg) {
                    continue; // writer squashed: row contents are stale
                }
                ddt.chain_into(&[PhysReg(reg)], &mut mask);
                let got = mask_ids(&ddt, &mask);
                let want = reference.chain(reg);
                prop_assert_eq!(&got, &want, "register p{} diverged", reg);
            }
        }
    }

    /// Rollback leaves exactly the pre-rollback prefix live: a chain read
    /// never references squashed instructions.
    #[test]
    fn rollback_hides_squashed_instructions(
        ops in proptest::collection::vec(op_strategy(16), 4..40),
        keep_frac in 0.1f64..0.9,
    ) {
        let mut ddt = Ddt::new(DdtConfig { slots: 64, phys_regs: 16 });
        for op in &ops {
            ddt.insert(Some(PhysReg(op.dest)), [op.src1.map(PhysReg), op.src2.map(PhysReg)]);
        }
        let keep = ((ops.len() as f64 * keep_frac) as u64).max(1);
        ddt.rollback_to(keep);
        for reg in 0..16u16 {
            let ids = mask_ids(&ddt, &ddt.chain(&[PhysReg(reg)]));
            prop_assert!(
                ids.iter().all(|&i| i < keep),
                "register p{reg} references squashed id: {ids:?} (keep {keep})"
            );
        }
    }

    /// Dependent counters equal the number of younger instructions whose
    /// insertion-time chain contained the counted instruction.
    #[test]
    fn dependent_counters_match_reference(
        ops in proptest::collection::vec(op_strategy(16), 1..32),
    ) {
        let mut t = Tracker::new(TrackerConfig {
            ddt: DdtConfig { slots: 64, phys_regs: 16 },
            track_dependents: true,
        });
        let mut reference = RefModel::default();
        let mut renamed = Vec::new();
        let mut insertion_chains: Vec<HashSet<u64>> = Vec::new();
        for op in &ops {
            let r = RenamedOp {
                dest: Some(PhysReg(op.dest)),
                srcs: [op.src1.map(PhysReg), op.src2.map(PhysReg)],
                is_load: op.is_load,
            };
            renamed.push(t.insert(&r));
            let id = reference.insert(op);
            insertion_chains.push(reference.chain(op.dest));
            debug_assert!(insertion_chains[id as usize].contains(&id));
        }
        for (i, &slot) in renamed.iter().enumerate() {
            let expected = insertion_chains
                .iter()
                .enumerate()
                .filter(|(j, chain)| *j != i && chain.contains(&(i as u64)))
                .count() as u32;
            prop_assert_eq!(
                t.dependents(slot),
                expected,
                "instruction {} dependents",
                i
            );
        }
    }
}

#[test]
fn figure_examples_are_stable() {
    // Pin the paper's worked examples as an integration-level regression
    // (unit tests cover them in-crate; this guards the public API path).
    let p = PhysReg;
    let mut t = Tracker::new(TrackerConfig {
        ddt: DdtConfig {
            slots: 9,
            phys_regs: 10,
        },
        track_dependents: false,
    });
    t.insert(&RenamedOp::load(p(1), Some(p(2))));
    t.insert(&RenamedOp::alu(p(4), [Some(p(1)), Some(p(3))]));
    t.insert(&RenamedOp::alu(p(5), [Some(p(4)), Some(p(1))]));
    t.insert(&RenamedOp::alu(p(6), [Some(p(5)), Some(p(4))]));
    t.insert(&RenamedOp::alu(p(7), [Some(p(1)), None]));
    t.insert(&RenamedOp::alu(p(8), [Some(p(4)), Some(p(7))]));
    let set = t.leaf_set([Some(p(8)), None]);
    assert_eq!(set.regs, vec![p(1), p(3)]);
    assert_eq!(
        t.chain(&[p(8)]).slots().collect::<Vec<_>>(),
        vec![InstSlot(0), InstSlot(1), InstSlot(4), InstSlot(5)]
    );
}

//! Deterministic fault injection across the sweep pipeline's failure
//! paths:
//!
//! 1. A persisted container corrupted at **arbitrary** offsets (bit
//!    flips, truncation — property tested) always surfaces a clean
//!    corruption error: never a panic, never silently wrong records.
//! 2. A panicking or stalled grid cell is isolated to its own
//!    [`CellOutcome`]; every other cell's result is bit-identical to an
//!    undisturbed run.
//! 3. A corrupt on-disk trace is quarantined (file preserved, incident
//!    logged) and re-recorded, and the degraded sweep's numbers are
//!    bit-identical to the healthy sweep's.
//! 4. With re-recording disabled the affected cells fall back to live
//!    emulation (still bit-identical) — or report a structured trace
//!    error when live fallback is off too.
//! 5. A sweep killed mid-grid resumes from its journal and the merged
//!    results are bit-identical to an uninterrupted run, over the full
//!    workload roster (8 suite benchmarks + 9 curated scenarios).

use std::sync::OnceLock;

use arvi::isa::{DynInst, Emulator};
use arvi::sim::{Depth, PredictorConfig, SimResult};
use arvi::trace::{quarantine_path, Trace, TraceReader};
use arvi::workloads::Benchmark;
use arvi_bench::{
    collect_results, run_sweep_emulated, run_sweep_resilient, run_sweep_with, trace_file_name,
    CellOutcome, Degradation, FaultPlan, Resilience, Spec, SweepPoint, TraceProvenance, TraceSet,
    Workload,
};
use proptest::prelude::*;

fn tiny_spec() -> Spec {
    Spec {
        warmup: 500,
        measure: 1_500,
        seed: 3,
    }
}

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("arvi-fault-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

/// Full bit-identity: every counter of the measurement window.
fn assert_bit_identical(a: &SimResult, b: &SimResult, label: &str) {
    assert_eq!(a.name, b.name, "{label}: name");
    assert_eq!(a.config, b.config, "{label}: config");
    assert_eq!(a.depth_stages, b.depth_stages, "{label}: depth");
    // `MachineStats` derives an exhaustive Debug; equal renderings mean
    // equal counters, and a mismatch prints both sides.
    assert_eq!(
        format!("{:?}", a.window),
        format!("{:?}", b.window),
        "{label}: window counters"
    );
}

// ---------------------------------------------------------------------
// 1. Arbitrary container corruption is always a clean error.
// ---------------------------------------------------------------------

/// One recording shared by every proptest case: the container bytes and
/// the records a healthy decode must reproduce.
fn corpus() -> &'static (Vec<u8>, Vec<DynInst>) {
    static CORPUS: OnceLock<(Vec<u8>, Vec<DynInst>)> = OnceLock::new();
    CORPUS.get_or_init(|| {
        let emu = Emulator::new(Benchmark::Compress.program(3));
        let trace = Trace::record(emu, 1_500, "compress", 3);
        let records: Vec<DynInst> = TraceReader::new(&trace).collect();
        (trace.to_bytes(), records)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// XOR any byte of the container with any mask: the reader either
    /// rejects the bytes with a corruption-class error or (mask 0)
    /// decodes the original records exactly. It never panics and never
    /// hands back different instructions.
    #[test]
    fn flipped_container_bytes_never_decode_wrong(at in any::<u64>(), mask in any::<u8>()) {
        let (bytes, records) = corpus();
        let mut bad = bytes.clone();
        let at = (at % bad.len() as u64) as usize;
        bad[at] ^= mask;
        match Trace::from_bytes(&bad) {
            Ok(t) => {
                prop_assert_eq!(mask, 0, "a real flip at {} decoded cleanly", at);
                let decoded: Vec<DynInst> = TraceReader::new(&t).collect();
                prop_assert_eq!(records, &decoded);
            }
            Err(e) => {
                prop_assert!(mask != 0, "unmodified container rejected: {}", e);
                prop_assert!(e.is_corruption(), "flip at {}: unexpected class: {:?}", at, e);
            }
        }
    }

    /// Truncate the container to any length: anything short of the full
    /// file is rejected with a corruption-class error, never a panic.
    #[test]
    fn truncated_container_is_always_rejected(keep in any::<u64>()) {
        let (bytes, records) = corpus();
        let keep = (keep % (bytes.len() as u64 + 1)) as usize;
        match Trace::from_bytes(&bytes[..keep]) {
            Ok(t) => {
                prop_assert_eq!(keep, bytes.len(), "short read at {} decoded cleanly", keep);
                let decoded: Vec<DynInst> = TraceReader::new(&t).collect();
                prop_assert_eq!(records, &decoded);
            }
            Err(e) => {
                prop_assert!(keep < bytes.len(), "full container rejected: {}", e);
                prop_assert!(e.is_corruption(), "keep {}: unexpected class: {:?}", keep, e);
            }
        }
    }
}

// ---------------------------------------------------------------------
// 2. Cell faults are isolated; undisturbed cells are bit-identical.
// ---------------------------------------------------------------------

fn small_points() -> Vec<SweepPoint> {
    [Benchmark::Compress, Benchmark::Li, Benchmark::Go]
        .into_iter()
        .map(|b| SweepPoint {
            workload: b.into(),
            depth: Depth::D20,
            config: PredictorConfig::ArviCurrent,
        })
        .collect()
}

#[test]
fn injected_panic_is_isolated_to_its_cell() {
    let spec = tiny_spec();
    let points = small_points();
    let clean = run_sweep_emulated(&points, spec, 1, false);

    let res = Resilience::new().with_plan(FaultPlan::parse("panic-cell 1").unwrap());
    let outcomes = run_sweep_resilient(&points, spec, 1, false, None, &res);
    assert_eq!(outcomes.len(), points.len());
    match &outcomes[1] {
        CellOutcome::Panicked { message } => {
            assert!(message.contains("injected fault"), "{message}")
        }
        other => panic!("cell 1: expected Panicked, got {other:?}"),
    }
    for i in [0, 2] {
        let s = outcomes[i].success().unwrap_or_else(|| {
            panic!(
                "cell {i} must survive its neighbor: {:?}",
                outcomes[i].failure()
            )
        });
        assert_eq!(s.degradation, Degradation::None);
        assert!(!s.resumed);
        assert_bit_identical(&s.result, &clean[i], &points[i].to_string());
    }

    // And the failure is reported, with the resume hint.
    let err = collect_results(&points, outcomes).unwrap_err();
    assert_eq!(err.total, points.len());
    assert_eq!(err.failed.len(), 1);
    assert_eq!(err.failed[0].0, 1);
    assert!(err.to_string().contains("--resume"), "{err}");
}

#[test]
fn stalled_cell_past_the_deadline_is_discarded() {
    let spec = tiny_spec();
    let points = small_points();
    let mut res = Resilience::new().with_plan(FaultPlan::parse("stall-cell 0 600").unwrap());
    res.deadline = Some(std::time::Duration::from_millis(250));
    let outcomes = run_sweep_resilient(&points, spec, 1, false, None, &res);
    match &outcomes[0] {
        CellOutcome::TimedOut { elapsed, deadline } => {
            assert!(elapsed > deadline, "{elapsed:?} vs {deadline:?}")
        }
        other => panic!("cell 0: expected TimedOut, got {other:?}"),
    }
    assert!(
        outcomes[1].success().is_some(),
        "{:?}",
        outcomes[1].failure()
    );
    assert!(
        outcomes[2].success().is_some(),
        "{:?}",
        outcomes[2].failure()
    );
}

// ---------------------------------------------------------------------
// 3. Quarantine + re-record: degraded, logged, bit-identical.
// ---------------------------------------------------------------------

#[test]
fn corrupt_trace_is_quarantined_rerecorded_and_results_unchanged() {
    let spec = tiny_spec();
    let dir = temp_dir("quarantine");
    let workloads = [Workload::from(Benchmark::Go)];
    let points: Vec<SweepPoint> = PredictorConfig::all()
        .into_iter()
        .map(|config| SweepPoint {
            workload: workloads[0].clone(),
            depth: Depth::D20,
            config,
        })
        .collect();

    // Healthy baseline: record, persist, sweep strictly.
    let clean = TraceSet::record(&workloads, spec, 1, Some(&dir));
    assert_eq!(
        clean.provenance(&workloads[0]),
        Some(&TraceProvenance::Recorded)
    );
    let expected = run_sweep_with(&points, spec, 1, false, &clean);

    // Inject corruption into the next read of go's trace file.
    let res = Resilience::new().with_plan(FaultPlan::parse("flip-chunk go 1 9").unwrap());
    let faulted = TraceSet::record_resilient(&workloads, spec, 1, Some(&dir), Some(&res));
    assert_eq!(
        faulted.provenance(&workloads[0]),
        Some(&TraceProvenance::Rerecorded { corrupt: true })
    );
    let path = dir.join(trace_file_name(&workloads[0], spec));
    assert!(quarantine_path(&path).exists(), "evidence preserved");
    assert!(path.exists(), "replacement recorded");
    let log = std::fs::read_to_string(dir.join("quarantine.log")).unwrap();
    assert!(log.contains("go-") && log.contains("re-recording"), "{log}");

    // The degraded sweep reports the degradation but identical numbers.
    let outcomes = run_sweep_resilient(&points, spec, 1, false, Some(&faulted), &res);
    for (i, (outcome, point)) in outcomes.iter().zip(&points).enumerate() {
        let s = outcome
            .success()
            .unwrap_or_else(|| panic!("{point}: {:?}", outcome.failure()));
        assert_eq!(s.degradation, Degradation::Requarantined, "{point}");
        assert_bit_identical(&s.result, &expected[i], &point.to_string());
    }

    // Atomic persistence never leaves temp files behind.
    for entry in std::fs::read_dir(&dir).unwrap() {
        let name = entry.unwrap().file_name().to_string_lossy().into_owned();
        assert!(!name.contains(".tmp."), "leftover temp file {name}");
    }
    std::fs::remove_dir_all(&dir).ok();
}

// ---------------------------------------------------------------------
// 4. Re-record disabled: live fallback, or a structured trace error.
// ---------------------------------------------------------------------

#[test]
fn unavailable_trace_falls_back_to_live_emulation_or_reports() {
    let spec = tiny_spec();
    let dir = temp_dir("fallback");
    let workloads = [Workload::from(Benchmark::Li)];
    let points = [SweepPoint {
        workload: workloads[0].clone(),
        depth: Depth::D20,
        config: PredictorConfig::ArviCurrent,
    }];
    let expected = run_sweep_emulated(&points, spec, 1, false);

    TraceSet::record(&workloads, spec, 1, Some(&dir));
    let mut res = Resilience::new().with_plan(FaultPlan::parse("flip li 100").unwrap());
    res.rerecord = false;
    let traces = TraceSet::record_resilient(&workloads, spec, 1, Some(&dir), Some(&res));
    assert!(
        matches!(
            traces.provenance(&workloads[0]),
            Some(TraceProvenance::Unavailable { .. })
        ),
        "{:?}",
        traces.provenance(&workloads[0])
    );
    assert!(traces.get(&workloads[0]).is_none());

    // Default policy: the cell degrades to live emulation, numbers
    // unchanged (replay is bit-identical to live, so nothing is lost).
    let outcomes = run_sweep_resilient(&points, spec, 1, false, Some(&traces), &res);
    let s = outcomes[0]
        .success()
        .unwrap_or_else(|| panic!("{:?}", outcomes[0].failure()));
    assert_eq!(s.degradation, Degradation::LiveEmulation);
    assert_bit_identical(&s.result, &expected[0], "live fallback");

    // With live fallback off, the cell reports the missing trace.
    res.live_fallback = false;
    let outcomes = run_sweep_resilient(&points, spec, 1, false, Some(&traces), &res);
    match &outcomes[0] {
        CellOutcome::TraceError { message } => {
            assert!(message.contains("quarantined"), "{message}")
        }
        other => panic!("expected TraceError, got {other:?}"),
    }
    std::fs::remove_dir_all(&dir).ok();
}

// ---------------------------------------------------------------------
// 5. Kill mid-grid, resume from journal, merge bit-identically.
// ---------------------------------------------------------------------

#[test]
fn killed_sweep_resumes_from_journal_bit_identically() {
    let spec = tiny_spec();
    // The full roster: 8 suite benchmarks + the 9 curated scenarios.
    let mut workloads = Workload::suite();
    workloads.extend(arvi::synth::curated().into_iter().map(Workload::scenario));
    assert_eq!(workloads.len(), 17);
    let points: Vec<SweepPoint> = workloads
        .iter()
        .map(|w| SweepPoint {
            workload: w.clone(),
            depth: Depth::D20,
            config: PredictorConfig::ArviCurrent,
        })
        .collect();
    let clean = run_sweep_emulated(&points, spec, 1, false);

    let dir = temp_dir("resume");
    let journal = dir.join("sweep.journal");

    // First run dies (deterministically) after 6 completed cells.
    let res = Resilience::new()
        .with_journal(&journal)
        .with_plan(FaultPlan::parse("kill-after 6").unwrap());
    let outcomes = run_sweep_resilient(&points, spec, 1, false, None, &res);
    let done = outcomes.iter().filter(|o| o.success().is_some()).count();
    let skipped = outcomes
        .iter()
        .filter(|o| matches!(o, CellOutcome::Skipped))
        .count();
    assert_eq!(done, 6, "killed after 6 cells");
    assert_eq!(skipped, points.len() - 6);
    assert!(collect_results(&points, outcomes).is_err());
    let text = std::fs::read_to_string(&journal).unwrap();
    assert!(text.starts_with("# arvi sweep journal v1"), "{text}");
    assert_eq!(text.lines().count(), 1 + 6, "header + one line per cell");

    // Second run resumes: completed cells restored, the rest simulated.
    let res = Resilience::new().with_journal(&journal).resuming();
    let outcomes = run_sweep_resilient(&points, spec, 1, false, None, &res);
    let resumed = outcomes
        .iter()
        .filter(|o| o.success().is_some_and(|s| s.resumed))
        .count();
    assert_eq!(resumed, 6, "every journaled cell restored, none re-run");
    let merged = collect_results(&points, outcomes).expect("resume completes the grid");

    // The merged (restored + freshly simulated) results are
    // bit-identical to the uninterrupted run, cell for cell.
    assert_eq!(merged.len(), clean.len());
    for ((point, a), b) in points.iter().zip(&merged).zip(&clean) {
        assert_bit_identical(a, b, &point.to_string());
    }
    std::fs::remove_dir_all(&dir).ok();
}

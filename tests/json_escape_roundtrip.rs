//! Property test: the report writer's JSON string escaping round-trips
//! through its own parser for arbitrary Unicode content.
//!
//! The journal and report paths put workload names, scenario specs and
//! error messages — arbitrary text — into JSON strings, and the
//! resilient sweep loads them back (`SweepJournal::load`). A character
//! the writer escapes wrongly (or the parser unescapes wrongly) would
//! silently corrupt resumed results, so `Json::Str(s)` must survive
//! `render_compact` → `parse` for *any* `s`, not just the tame names in
//! the curated suites.
//!
//! The vendored proptest shim has no `String` strategy, so strings are
//! built from `Vec<u16>` code units via `from_utf16_lossy` — which
//! deliberately produces plenty of the interesting cases: quotes,
//! backslashes, raw control characters (escaped as `\uXXXX`), and
//! non-BMP replacement churn from unpaired surrogates.

use arvi_bench::Json;
use proptest::prelude::*;

/// Arbitrary strings biased toward escape-relevant characters: ASCII
/// code units (dense in `"`, `\` and control chars) interleaved with
/// unconstrained UTF-16 code units.
fn any_string() -> impl Strategy<Value = String> {
    proptest::collection::vec((any::<u16>(), any::<bool>()), 0..64).prop_map(|units| {
        let units: Vec<u16> = units
            .into_iter()
            .map(|(u, ascii)| if ascii { u % 0x80 } else { u })
            .collect();
        String::from_utf16_lossy(&units)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn string_value_round_trips(s in any_string()) {
        let doc = Json::Str(s.clone());
        let compact = doc.render_compact();
        // The journal stores one record per line: escaping must keep
        // every value single-line regardless of embedded newlines.
        prop_assert!(!compact.contains('\n'), "compact output spans lines: {compact:?}");
        let back = Json::parse(&compact)
            .unwrap_or_else(|e| panic!("reparse failed: {e} on {compact:?}"));
        prop_assert_eq!(back, doc);
    }

    #[test]
    fn object_keys_and_values_round_trip(key in any_string(), val in any_string()) {
        // Keys go through the same escaping path as values; a nested
        // object exercises both plus the array writer.
        let doc = Json::Obj(vec![
            (key.clone(), Json::Str(val.clone())),
            ("nested".to_string(), Json::Arr(vec![Json::Str(key), Json::Str(val)])),
        ]);
        let compact = doc.render_compact();
        prop_assert!(!compact.contains('\n'));
        let back = Json::parse(&compact)
            .unwrap_or_else(|e| panic!("reparse failed: {e} on {compact:?}"));
        prop_assert_eq!(back, doc.clone());
        // The pretty renderer shares the escaping code; it must agree.
        let pretty = Json::parse(&doc.render())
            .unwrap_or_else(|e| panic!("pretty reparse failed: {e}"));
        prop_assert_eq!(pretty, doc);
    }
}

/// The specific characters the writer special-cases, pinned exactly.
#[test]
fn known_escapes_render_as_expected() {
    let s = "a\"b\\c\nd\re\tf\u{1}g€\u{10348}";
    let compact = Json::Str(s.to_string()).render_compact();
    assert_eq!(
        compact, "\"a\\\"b\\\\c\\nd\\re\\tf\\u0001g€\u{10348}\"",
        "escaping changed: {compact}"
    );
    assert_eq!(Json::parse(&compact).unwrap(), Json::Str(s.to_string()));
}

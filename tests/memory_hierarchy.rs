//! Property tests of the cache/TLB models against reference
//! implementations.

use arvi::sim::{Cache, CacheConfig, SimParams, Tlb, TlbConfig};
use proptest::prelude::*;
use std::collections::VecDeque;

/// Reference fully-explicit LRU set-associative cache.
struct RefCache {
    sets: Vec<VecDeque<u64>>, // most-recent at the front
    ways: usize,
    line: u64,
    set_count: u64,
}

impl RefCache {
    fn new(cfg: CacheConfig) -> RefCache {
        let lines = cfg.size_bytes / cfg.line_bytes;
        let set_count = (lines / cfg.ways) as u64;
        RefCache {
            sets: (0..set_count).map(|_| VecDeque::new()).collect(),
            ways: cfg.ways,
            line: cfg.line_bytes as u64,
            set_count,
        }
    }

    fn access(&mut self, addr: u64) -> bool {
        let line = addr / self.line;
        let set = (line % self.set_count) as usize;
        let tag = line / self.set_count;
        let s = &mut self.sets[set];
        if let Some(pos) = s.iter().position(|&t| t == tag) {
            s.remove(pos);
            s.push_front(tag);
            true
        } else {
            if s.len() == self.ways {
                s.pop_back();
            }
            s.push_front(tag);
            false
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The cache model agrees with an explicit LRU reference on every
    /// access of arbitrary address streams.
    #[test]
    fn cache_matches_lru_reference(addrs in proptest::collection::vec(0u64..(1 << 14), 1..600)) {
        let cfg = CacheConfig { size_bytes: 1024, ways: 4, line_bytes: 32 };
        let mut cache = Cache::new(cfg);
        let mut reference = RefCache::new(cfg);
        for (i, &a) in addrs.iter().enumerate() {
            prop_assert_eq!(cache.access(a), reference.access(a), "access {} (addr {:#x})", i, a);
        }
    }

    /// Hits plus misses equals accesses, and `contains` agrees with a
    /// just-performed access.
    #[test]
    fn cache_counters_are_consistent(addrs in proptest::collection::vec(0u64..(1 << 16), 1..300)) {
        let cfg = CacheConfig { size_bytes: 2048, ways: 2, line_bytes: 64 };
        let mut cache = Cache::new(cfg);
        for &a in &addrs {
            cache.access(a);
            prop_assert!(cache.contains(a), "line just accessed must be resident");
        }
        prop_assert_eq!(cache.hits() + cache.misses(), addrs.len() as u64);
    }

    /// A working set no larger than one set's associativity never
    /// conflicts (all accesses after the first round hit).
    #[test]
    fn within_associativity_never_evicts(base in 0u64..(1 << 12)) {
        let cfg = CacheConfig { size_bytes: 4096, ways: 4, line_bytes: 32 };
        let sets = (4096 / 32 / 4) as u64;
        let mut cache = Cache::new(cfg);
        // Four lines mapping to the same set.
        let lines: Vec<u64> = (0..4).map(|i| (base + i * sets) * 32).collect();
        for &l in &lines {
            cache.access(l);
        }
        for _ in 0..3 {
            for &l in &lines {
                prop_assert!(cache.access(l), "steady-state working set must hit");
            }
        }
    }

    /// TLB translations are page-granular: all addresses within a page
    /// share one entry.
    #[test]
    fn tlb_page_granularity(page in 0u64..4096, offsets in proptest::collection::vec(0u64..8192, 1..32)) {
        let mut tlb = Tlb::new(TlbConfig { entries: 64, ways: 4, page_bytes: 8192 });
        tlb.access(page * 8192);
        for &off in &offsets {
            prop_assert!(tlb.access(page * 8192 + off));
        }
    }
}

#[test]
fn paper_cache_shapes_construct() {
    // The Table 2 shapes must all be internally consistent.
    for depth in arvi::sim::Depth::all() {
        let p = SimParams::for_depth(depth);
        let _ = Cache::new(p.l1i);
        let _ = Cache::new(p.l1d);
        let _ = Cache::new(p.l2);
        let _ = Tlb::new(p.itlb);
        let _ = Tlb::new(p.dtlb);
    }
}

//! Grid-scale telemetry contract tests:
//!
//! 1. **Thread determinism** — the merged `obs_grid.json` rollup is
//!    byte-identical across worker counts (cells merge in point order,
//!    not completion order).
//! 2. **Resume fidelity** — a grid killed mid-run and resumed from its
//!    obs journal renders byte-identically to an uninterrupted run
//!    (full-fidelity probe serialization, no run-shape fields in the
//!    JSON).
//! 3. **Conservation** — every group's merged counter sums equal the
//!    sums of its per-cell commit counts over the full benchmark suite,
//!    and the grid total equals the sum over groups.
//! 4. **Attribution** — on a data-dependent-branch scenario the
//!    ARVI-vs-baseline diff names at least one branch PC ARVI fixes
//!    (the paper's core claim, made falsifiable per site).
//! 5. **Structured events** — the resilient sweep's `--events-out`
//!    JSONL log parses line by line with the expected span events, and
//!    the Prometheus-style metrics export carries the cell outcomes.

use std::sync::Arc;

use arvi::sim::{Depth, PredictorConfig};
use arvi::workloads::Benchmark;
use arvi_bench::{
    attribution_diff, grid, obs_grid_json, run_obs_grid, run_sweep_resilient, FaultPlan, Json,
    Resilience, Spec, SweepTelemetry, TraceSet, Workload,
};

fn tiny_spec() -> Spec {
    Spec {
        warmup: 500,
        measure: 1_500,
        seed: 3,
    }
}

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("arvi-obsgrid-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn small_workloads() -> Vec<Workload> {
    vec![
        Workload::from(Benchmark::Compress),
        Workload::from(Benchmark::Li),
    ]
}

#[test]
fn rollup_is_byte_identical_across_thread_counts() {
    let spec = tiny_spec();
    let workloads = small_workloads();
    let points = grid(&workloads, &[Depth::D20], &PredictorConfig::all());
    let traces = TraceSet::record(&workloads, spec, 4, None);

    let render = |threads: usize| {
        let g = run_obs_grid(&points, spec, threads, Some(&traces), None, false);
        assert_eq!(g.completed, points.len(), "failed cells: {:?}", g.failed);
        obs_grid_json(&g, 5).render()
    };
    let one = render(1);
    assert_eq!(one, render(4), "1 vs 4 threads");
    assert_eq!(one, render(8), "1 vs 8 threads");
}

#[test]
fn killed_grid_resumes_byte_identical() {
    let spec = tiny_spec();
    let workloads = small_workloads();
    let points = grid(&workloads, &[Depth::D20], &PredictorConfig::all());
    let traces = TraceSet::record(&workloads, spec, 4, None);
    let dir = temp_dir("resume");
    let journal = dir.join("sweep.journal");

    // Reference: one uninterrupted, journal-free run.
    let direct = run_obs_grid(&points, spec, 1, Some(&traces), None, false);
    let direct_json = obs_grid_json(&direct, 5).render();

    // First run dies after 3 completed cells; its obs journal keeps
    // the finished telemetry.
    let res = Resilience::new()
        .with_journal(&journal)
        .with_plan(FaultPlan::parse("kill-after 3").unwrap());
    let killed = run_obs_grid(&points, spec, 1, Some(&traces), Some(&res), false);
    assert_eq!(killed.completed, 3, "killed after 3 cells");
    assert_eq!(killed.failed.len(), points.len() - 3);
    let obs_journal = dir.join("sweep.journal.obs");
    let text = std::fs::read_to_string(&obs_journal).unwrap();
    assert!(text.starts_with("# arvi obs journal v1"), "{text}");
    assert_eq!(text.lines().count(), 1 + 3, "header + one line per cell");

    // Second run resumes: journaled telemetry restored, the rest
    // simulated — and the rollup is byte-identical to the direct run.
    let res = Resilience::new().with_journal(&journal).resuming();
    let resumed = run_obs_grid(&points, spec, 1, Some(&traces), Some(&res), false);
    assert_eq!(resumed.completed, points.len());
    assert_eq!(resumed.resumed, 3, "every journaled cell restored");
    assert_eq!(
        obs_grid_json(&resumed, 5).render(),
        direct_json,
        "resumed rollup must be byte-identical to an uninterrupted run"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn merged_counter_sums_equal_per_cell_sums_over_the_suite() {
    let spec = tiny_spec();
    let workloads = Workload::suite();
    let points = grid(&workloads, &[Depth::D20], &PredictorConfig::all());
    let traces = TraceSet::record(&workloads, spec, 4, None);
    let g = run_obs_grid(&points, spec, 4, Some(&traces), None, false);
    assert_eq!(g.completed, points.len(), "failed cells: {:?}", g.failed);
    assert_eq!(
        g.groups.len(),
        workloads.len() * PredictorConfig::all().len()
    );

    // Per (workload, config) group: merged committed count == the sum
    // of that group's per-cell commit counts.
    let mut grand_total = 0u64;
    for group in &g.groups {
        let cell_sum: u64 = points
            .iter()
            .zip(&g.cells_committed)
            .filter(|(p, _)| p.workload.name() == group.workload && p.config == group.config)
            .filter_map(|(_, c)| *c)
            .sum();
        assert!(cell_sum > 0, "group {} ran nothing", group.workload);
        assert_eq!(
            group.counters.committed, cell_sum,
            "group ({}, {}) merged commits diverge from its cells",
            group.workload, group.config
        );
        grand_total += cell_sum;
    }
    assert_eq!(
        g.counters.committed, grand_total,
        "grid-wide merge diverges from the sum over groups"
    );

    // The same invariant holds for the rendered JSON's numbers.
    let json = obs_grid_json(&g, 5);
    assert_eq!(
        json.num("grid.counters.committed"),
        Some(grand_total as f64)
    );
    assert_eq!(json.num("completed"), Some(points.len() as f64));
}

#[test]
fn attribution_names_sites_arvi_fixes_on_datadep() {
    // A data-dependent-branch scenario: the two-level baseline hovers
    // near chance while ARVI reads the operands — per-site attribution
    // must surface concrete PCs that ARVI fixes.
    let spec = Spec {
        warmup: 2_000,
        measure: 8_000,
        seed: 3,
    };
    let workloads = vec![Workload::scenario(
        arvi::synth::find("datadep-deep").expect("curated scenario"),
    )];
    let points = grid(
        &workloads,
        &[Depth::D20],
        &[PredictorConfig::TwoLevelGskew, PredictorConfig::ArviCurrent],
    );
    let g = run_obs_grid(&points, spec, 1, None, None, false);
    assert_eq!(g.completed, points.len(), "failed cells: {:?}", g.failed);

    let json = obs_grid_json(&g, 10);
    let attribution = attribution_diff(&json, 10).expect("both configs present");
    assert_eq!(attribution.workloads.len(), 1);
    let w = &attribution.workloads[0];
    assert_eq!(w.workload, "datadep-deep");
    assert_eq!(w.arvi_config, "arvi current value");
    assert_eq!(w.baseline_config, "2-level 2Bc-gskew");
    assert!(
        w.arvi_accuracy > w.baseline_accuracy,
        "ARVI must beat the baseline on datadep ({:.4} vs {:.4})",
        w.arvi_accuracy,
        w.baseline_accuracy
    );
    assert!(
        !w.fixed.is_empty(),
        "at least one fixed site expected on datadep"
    );
    let top = &w.fixed[0];
    assert!(top.delta > 0);
    assert!(top.baseline_mispredicts > top.arvi_mispredicts);
    assert!(top.executed >= top.baseline_mispredicts);

    // Renderings carry the same story.
    let md = attribution.to_markdown();
    assert!(md.contains("datadep-deep"), "{md}");
    assert!(md.contains("sites ARVI fixes"), "{md}");
    let back = attribution.to_json();
    let Some(Json::Arr(ws)) = back.get("workloads") else {
        panic!("workloads array missing");
    };
    assert!(ws[0].num("arvi_accuracy").unwrap() > ws[0].num("baseline_accuracy").unwrap());
}

#[test]
fn events_jsonl_and_metrics_export_from_a_resilient_sweep() {
    let spec = tiny_spec();
    let workloads = small_workloads();
    let points = grid(&workloads, &[Depth::D20], &[PredictorConfig::ArviCurrent]);
    let dir = temp_dir("events");
    let events_path = dir.join("logs/events.jsonl");
    let metrics_path = dir.join("logs/metrics.prom");

    let mut res = Resilience::new();
    res.telemetry = Some(Arc::new(
        SweepTelemetry::from_paths(Some(&events_path), Some(&metrics_path)).unwrap(),
    ));
    let traces = TraceSet::record(&workloads, spec, 2, None);
    let outcomes = run_sweep_resilient(&points, spec, 2, false, Some(&traces), &res);
    assert!(outcomes.iter().all(|o| o.success().is_some()));

    // Every line is a JSON object with a monotonic-origin timestamp and
    // an event name; the span events cover the sweep lifecycle.
    let text = std::fs::read_to_string(&events_path).unwrap();
    let mut seen = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let j = Json::parse(line).unwrap_or_else(|e| panic!("line {}: {e}: {line}", i + 1));
        assert!(
            j.num("t_us").is_some(),
            "line {} has no t_us: {line}",
            i + 1
        );
        match j.get("event") {
            Some(Json::Str(name)) => seen.push(name.clone()),
            _ => panic!("line {} has no event name: {line}", i + 1),
        }
    }
    for expected in ["sweep_start", "cell_start", "cell_end", "sweep_end"] {
        assert!(
            seen.iter().any(|e| e == expected),
            "event `{expected}` missing from {seen:?}"
        );
    }
    assert_eq!(
        seen.iter().filter(|e| *e == "cell_end").count(),
        points.len(),
        "one cell_end per cell"
    );

    // The metrics snapshot counts the same outcomes.
    let metrics = std::fs::read_to_string(&metrics_path).unwrap();
    assert!(metrics.contains("arvi_sweeps_total 1"), "{metrics}");
    assert!(
        metrics.contains(&format!(
            "arvi_sweep_cells_total{{outcome=\"ok\"}} {}",
            points.len()
        )),
        "{metrics}"
    );
    assert!(
        metrics.contains("# TYPE arvi_sweeps_total counter"),
        "{metrics}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

//! End-to-end integration tests: full workloads through the complete
//! timing simulator under every predictor configuration.

use arvi::sim::{simulate, Depth, PredictorConfig, SimParams, SimResult};
use arvi::workloads::Benchmark;

fn quick(bench: Benchmark, depth: Depth, config: PredictorConfig) -> SimResult {
    simulate(
        bench.program(42),
        SimParams::for_depth(depth),
        config,
        30_000,
        120_000,
    )
}

#[test]
fn every_configuration_simulates_every_benchmark() {
    // One smoke cell per (benchmark, config) at 20 stages.
    for bench in Benchmark::all() {
        for config in PredictorConfig::all() {
            let r = quick(bench, Depth::D20, config);
            assert!(
                r.ipc() > 0.05 && r.ipc() < 4.1,
                "{bench}/{config}: IPC {} out of range",
                r.ipc()
            );
            assert!(
                r.accuracy() > 0.5,
                "{bench}/{config}: accuracy {} out of range",
                r.accuracy()
            );
            assert!(
                r.window.cond_branches.total() > 5_000,
                "{bench}: too few branches"
            );
        }
    }
}

#[test]
fn simulation_is_deterministic() {
    let a = quick(
        Benchmark::Compress,
        Depth::D20,
        PredictorConfig::ArviCurrent,
    );
    let b = quick(
        Benchmark::Compress,
        Depth::D20,
        PredictorConfig::ArviCurrent,
    );
    assert_eq!(a.window.cycles, b.window.cycles);
    assert_eq!(
        a.window.cond_branches.correct(),
        b.window.cond_branches.correct()
    );
    assert_eq!(a.window.full_mispredicts, b.window.full_mispredicts);
}

#[test]
fn arvi_beats_baseline_on_value_correlated_workloads() {
    // The paper's central claim, on its strongest benchmarks.
    for bench in [Benchmark::M88ksim, Benchmark::Li, Benchmark::Compress] {
        let base = quick(bench, Depth::D20, PredictorConfig::TwoLevelGskew);
        let arvi = quick(bench, Depth::D20, PredictorConfig::ArviCurrent);
        assert!(
            arvi.accuracy() > base.accuracy(),
            "{bench}: ARVI {:.4} must beat hybrid {:.4}",
            arvi.accuracy(),
            base.accuracy()
        );
        assert!(
            arvi.ipc() > base.ipc(),
            "{bench}: ARVI IPC {:.3} must beat hybrid {:.3}",
            arvi.ipc(),
            base.ipc()
        );
    }
}

#[test]
fn m88ksim_headline_shape() {
    // Paper Section 6: near-perfect accuracy versus ~95% for the hybrid,
    // yielding a very large IPC gain on the 20-stage machine.
    let base = quick(
        Benchmark::M88ksim,
        Depth::D20,
        PredictorConfig::TwoLevelGskew,
    );
    let arvi = quick(Benchmark::M88ksim, Depth::D20, PredictorConfig::ArviCurrent);
    assert!(
        arvi.accuracy() - base.accuracy() > 0.03,
        "accuracy gap too small: {:.4} vs {:.4}",
        arvi.accuracy(),
        base.accuracy()
    );
    // The simulator reproduces the paper's *shape* (a large double-digit
    // gain), not its exact magnitude; the deterministic model currently
    // measures 1.26x on this window, so gate at 1.2x.
    assert!(
        arvi.ipc() / base.ipc() > 1.2,
        "IPC speedup too small: {:.3}",
        arvi.ipc() / base.ipc()
    );
}

#[test]
fn perfect_value_dominates_current_on_average() {
    // Figure 6: perfect value is the bound for ARVI. Individual
    // benchmarks may tie; the suite-level mean must order.
    let mut current_mean = 0.0;
    let mut perfect_mean = 0.0;
    for bench in Benchmark::all() {
        let base = quick(bench, Depth::D20, PredictorConfig::TwoLevelGskew).ipc();
        current_mean += quick(bench, Depth::D20, PredictorConfig::ArviCurrent).ipc() / base;
        perfect_mean += quick(bench, Depth::D20, PredictorConfig::ArviPerfect).ipc() / base;
    }
    assert!(
        perfect_mean >= current_mean,
        "perfect {perfect_mean:.3} must dominate current {current_mean:.3}"
    );
}

#[test]
fn load_back_converts_ijpeg() {
    // "With the exception of ijpeg, the load back scheme only slightly
    // increases predictor accuracy" — ijpeg's hoistable pixel loads are
    // the exception.
    let current = quick(Benchmark::Ijpeg, Depth::D20, PredictorConfig::ArviCurrent);
    let loadback = quick(Benchmark::Ijpeg, Depth::D20, PredictorConfig::ArviLoadBack);
    assert!(
        loadback.accuracy() - current.accuracy() > 0.05,
        "load-back {:.4} vs current {:.4}",
        loadback.accuracy(),
        current.accuracy()
    );
    // And it converts load branches into calculated ones.
    assert!(
        loadback.load_branch_fraction() < current.load_branch_fraction(),
        "load fraction must fall: {:.3} -> {:.3}",
        current.load_branch_fraction(),
        loadback.load_branch_fraction()
    );
}

#[test]
fn load_branch_fraction_grows_with_depth() {
    // Figure 5(a): deeper pipelines keep more loads outstanding at
    // prediction time.
    for bench in [Benchmark::Go, Benchmark::Compress] {
        let d20 = quick(bench, Depth::D20, PredictorConfig::ArviCurrent);
        let d60 = quick(bench, Depth::D60, PredictorConfig::ArviCurrent);
        assert!(
            d60.load_branch_fraction() >= d20.load_branch_fraction() - 0.02,
            "{bench}: load fraction {:.3} @20 vs {:.3} @60",
            d20.load_branch_fraction(),
            d60.load_branch_fraction()
        );
    }
}

#[test]
fn deeper_pipelines_lower_ipc() {
    for config in [PredictorConfig::TwoLevelGskew, PredictorConfig::ArviCurrent] {
        let d20 = quick(Benchmark::Gcc, Depth::D20, config);
        let d60 = quick(Benchmark::Gcc, Depth::D60, config);
        assert!(
            d60.ipc() < d20.ipc(),
            "{config}: IPC must fall with depth ({:.3} -> {:.3})",
            d20.ipc(),
            d60.ipc()
        );
    }
}

#[test]
fn calculated_branches_predict_better_than_load_branches() {
    // Figure 5(b): across the suite, calculated branches are the easier
    // class under ARVI.
    let mut calc_correct = 0u64;
    let mut calc_total = 0u64;
    let mut load_correct = 0u64;
    let mut load_total = 0u64;
    for bench in Benchmark::all() {
        let r = quick(bench, Depth::D20, PredictorConfig::ArviCurrent);
        calc_correct += r.window.calc_class.correct();
        calc_total += r.window.calc_class.total();
        load_correct += r.window.load_class.correct();
        load_total += r.window.load_class.total();
    }
    let calc = calc_correct as f64 / calc_total as f64;
    let load = load_correct as f64 / load_total as f64;
    assert!(
        calc > load,
        "calculated {calc:.4} must beat load {load:.4} suite-wide"
    );
}

#[test]
fn override_restarts_only_in_two_level_operation() {
    // Corrective overrides exist in both configs; their count is bounded
    // by total overrides.
    let r = quick(Benchmark::Li, Depth::D20, PredictorConfig::ArviCurrent);
    assert!(r.window.overrides >= r.window.overrides_correcting);
    assert!(r.window.override_restarts <= r.window.overrides + 1);
}

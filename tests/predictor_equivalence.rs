//! Bit-identity harness for the packed-counter, index-carrying branch
//! predictors (PR 5).
//!
//! The PR 5 refactor rebuilt the predict/train data path: every table
//! moved from `Vec<SatCounter>` structs to [`PackedCounters`] words (the
//! 2Bc-gskew additionally bank-interleaved), and training consumes the
//! bank indices carried in the [`Prediction`] instead of re-hashing PC
//! and history from the checkpoint. None of that may change a single
//! prediction: this harness drives each packed predictor and its
//! preserved scalar twin (`arvi_bench::baseline::Scalar*`) over the
//! recorded conditional-branch streams of
//!
//! 1. the full 8-benchmark suite, and
//! 2. all curated synthetic scenarios,
//!
//! under both the immediate protocol and a delayed-update protocol that
//! mirrors the machine (histories advance speculatively at fetch,
//! training happens a window of branches later, out of the decision
//! FIFO) — the regime where carried indices and checkpoint re-hashing
//! could diverge if either were wrong. Every prediction and every
//! post-train table readback must match, branch for branch.

use std::collections::VecDeque;

use arvi::predict::{Bimodal, DirectionPredictor, Gshare, GskewConfig, Local, TwoBcGskew};
use arvi_bench::baseline::{
    ScalarBimodal, ScalarDirectionPredictor, ScalarGshare, ScalarLocal, ScalarTwoBcGskew,
};
use arvi_bench::{conditional_branches, record_trace, Spec, Workload};

fn spec() -> Spec {
    Spec {
        warmup: 2_000,
        measure: 8_000,
        seed: 42,
    }
}

/// The recorded conditional-branch stream of a workload.
fn branch_stream(workload: &Workload) -> Vec<(u64, bool)> {
    conditional_branches(&record_trace(workload, spec()))
}

/// Drives a packed/scalar predictor pair over one stream with immediate
/// updates; asserts every prediction and checkpoint identical.
fn assert_immediate_identical<P, S>(
    packed: &mut P,
    scalar: &mut S,
    stream: &[(u64, bool)],
    label: &str,
) where
    P: DirectionPredictor,
    S: ScalarDirectionPredictor,
{
    for (i, &(pc, taken)) in stream.iter().enumerate() {
        let pp = packed.predict(pc);
        let (st, sc) = scalar.predict(pc);
        assert_eq!(
            (pp.taken, pp.checkpoint),
            (st, sc),
            "{label}: immediate divergence at branch {i} (pc {pc:#x})"
        );
        packed.spec_push(taken);
        scalar.spec_push(taken);
        packed.update(pc, &pp, taken);
        scalar.update(pc, sc, taken);
    }
}

/// Drives the pair under the machine-shaped delayed protocol: histories
/// move speculatively at prediction, training drains from a FIFO
/// `window` branches later (like the commit-order decision queue). The
/// packed side trains through its carried indices, the scalar side
/// re-hashes its checkpoint — the two data paths under comparison.
fn assert_delayed_identical<P, S>(
    packed: &mut P,
    scalar: &mut S,
    stream: &[(u64, bool)],
    window: usize,
    label: &str,
) where
    P: DirectionPredictor,
    S: ScalarDirectionPredictor,
{
    let mut in_flight: VecDeque<(u64, bool, arvi::predict::Prediction, u64)> = VecDeque::new();
    for (i, &(pc, taken)) in stream.iter().enumerate() {
        let pp = packed.predict(pc);
        let (st, sc) = scalar.predict(pc);
        assert_eq!(
            (pp.taken, pp.checkpoint),
            (st, sc),
            "{label}: delayed divergence at branch {i} (pc {pc:#x}, window {window})"
        );
        packed.spec_push(taken);
        scalar.spec_push(taken);
        in_flight.push_back((pc, taken, pp, sc));
        if in_flight.len() > window {
            let (cpc, ctaken, cpred, cckpt) = in_flight.pop_front().expect("non-empty");
            packed.update(cpc, &cpred, ctaken);
            scalar.update(cpc, cckpt, ctaken);
        }
    }
    // Drain the window (commit the tail).
    while let Some((cpc, ctaken, cpred, cckpt)) = in_flight.pop_front() {
        packed.update(cpc, &cpred, ctaken);
        scalar.update(cpc, cckpt, ctaken);
    }
}

/// All packed/scalar pairs over one workload's stream, both protocols.
fn compare_workload(workload: &Workload) {
    let stream = branch_stream(workload);
    assert!(
        stream.len() > 200,
        "{}: stream too short ({}) to exercise the tables",
        workload.name(),
        stream.len()
    );
    let name = workload.name();

    assert_immediate_identical(
        &mut Bimodal::new(12),
        &mut ScalarBimodal::new(12),
        &stream,
        &format!("{name}/bimodal"),
    );
    assert_immediate_identical(
        &mut Gshare::new(14, 12),
        &mut ScalarGshare::new(14, 12),
        &stream,
        &format!("{name}/gshare"),
    );
    assert_immediate_identical(
        &mut Local::new(10, 8, 14),
        &mut ScalarLocal::new(10, 8, 14),
        &stream,
        &format!("{name}/local"),
    );
    for (cfg, tag) in [
        (GskewConfig::level1(), "gskew-l1"),
        (GskewConfig::level2(), "gskew-l2"),
    ] {
        assert_immediate_identical(
            &mut TwoBcGskew::new(cfg),
            &mut ScalarTwoBcGskew::new(cfg),
            &stream,
            &format!("{name}/{tag}"),
        );
    }

    // The delayed protocol at the depths the machine exposes: a shallow
    // window (L2 latency class) and a ROB-deep one.
    for window in [4usize, 48] {
        assert_delayed_identical(
            &mut Gshare::new(14, 12),
            &mut ScalarGshare::new(14, 12),
            &stream,
            window,
            &format!("{name}/gshare"),
        );
        assert_delayed_identical(
            &mut TwoBcGskew::new(GskewConfig::level2()),
            &mut ScalarTwoBcGskew::new(GskewConfig::level2()),
            &stream,
            window,
            &format!("{name}/gskew-l2"),
        );
    }
}

/// Every suite benchmark's recorded branch stream, every predictor pair.
#[test]
fn benchmark_grid_streams_are_bit_identical() {
    for workload in Workload::suite() {
        compare_workload(&workload);
    }
}

/// All curated synthetic scenarios (the 9-scenario set of PR 3).
#[test]
fn curated_scenario_streams_are_bit_identical() {
    let scenarios = Workload::curated_scenarios();
    assert_eq!(scenarios.len(), 9, "curated set changed size");
    for workload in scenarios {
        compare_workload(&workload);
    }
}

/// The gskew's packed banks and the scalar banks must also agree on
/// component state after training, not just on the emitted stream:
/// spot-check the component votes across a PC sample at end of run.
#[test]
fn gskew_component_state_matches_after_training() {
    let stream = branch_stream(&Workload::suite()[0]);
    let mut packed = TwoBcGskew::new(GskewConfig::level1());
    let mut scalar = ScalarTwoBcGskew::new(GskewConfig::level1());
    assert_immediate_identical(&mut packed, &mut scalar, &stream, "m88ksim/votes");
    for pc in (0..4096u64).map(|i| i << 2) {
        let (bim, g0, g1, meta) = packed.component_votes(pc);
        // The scalar twin exposes no vote accessor; re-predict instead —
        // prediction is a pure read on both sides.
        let (staken, _) = scalar.predict(pc);
        let majority = (bim as u8 + g0 as u8 + g1 as u8) >= 2;
        let ptaken = if meta { majority } else { bim };
        assert_eq!(ptaken, staken, "vote mismatch at pc {pc:#x}");
    }
}

//! Property tests on the predictor stack: structural invariants that must
//! hold for any input stream.

use arvi::core::{Bvit, BvitConfig};
use arvi::predict::{
    Bimodal, ConfidenceConfig, ConfidenceEstimator, DirectionPredictor, Gshare, GskewConfig,
    PackedCounters, SatCounter, TwoBcGskew,
};
use proptest::prelude::*;

fn outcome_stream() -> impl Strategy<Value = Vec<(u64, bool)>> {
    proptest::collection::vec((0u64..4096, any::<bool>()), 1..400)
        .prop_map(|v| v.into_iter().map(|(pc, t)| (pc << 2, t)).collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// A fully biased branch is eventually always predicted correctly by
    /// every predictor, regardless of interleaved noise at other PCs.
    #[test]
    fn biased_branches_converge(noise in outcome_stream(), bias in any::<bool>()) {
        let target_pc = 1 << 20;
        let mut predictors: Vec<Box<dyn DirectionPredictor>> = vec![
            Box::new(Bimodal::new(12)),
            Box::new(Gshare::new(12, 8)),
            Box::new(TwoBcGskew::new(GskewConfig::level1())),
        ];
        for p in &mut predictors {
            // Interleave noise with the biased branch.
            for (i, &(pc, taken)) in noise.iter().enumerate() {
                let n = p.predict(pc);
                p.spec_push(taken);
                p.update(pc, &n, taken);
                if i % 3 == 0 {
                    let t = p.predict(target_pc);
                    p.spec_push(bias);
                    p.update(target_pc, &t, bias);
                }
            }
            // Warm the biased branch with a run longer than any history
            // register, so the final prediction's history context has
            // itself been trained repeatedly.
            for _ in 0..24 {
                let t = p.predict(target_pc);
                p.spec_push(bias);
                p.update(target_pc, &t, bias);
            }
            let final_pred = p.predict(target_pc);
            prop_assert_eq!(
                final_pred.taken, bias,
                "{} failed to learn the bias", p.name()
            );
        }
    }

    /// Predictions are pure reads: predicting twice without an update
    /// yields the same direction.
    #[test]
    fn prediction_is_idempotent(stream in outcome_stream()) {
        let mut p = TwoBcGskew::new(GskewConfig::level1());
        for (pc, taken) in stream {
            let a = p.predict(pc);
            let b = p.predict(pc);
            prop_assert_eq!(a.taken, b.taken);
            prop_assert_eq!(a.checkpoint, b.checkpoint);
            p.spec_push(taken);
            p.update(pc, &a, taken);
        }
    }

    /// The confidence estimator never reports confident before
    /// `threshold` consecutive correct L1 predictions in a context.
    #[test]
    fn confidence_requires_a_run(events in proptest::collection::vec(any::<bool>(), 1..200)) {
        let cfg = ConfidenceConfig { threshold: 8, history_bits: 0, ..Default::default() };
        let mut ce = ConfidenceEstimator::new(cfg);
        let mut run = 0u32;
        for correct in events {
            let confident = ce.is_confident(0x40, 0);
            prop_assert_eq!(confident, run >= 8, "run {}", run);
            ce.update(0x40, 0, correct);
            run = if correct { run + 1 } else { 0 };
        }
    }

    /// BVIT invariants: a lookup hit always reflects the latest update
    /// direction trend, and distinct tags never alias within a set.
    #[test]
    fn bvit_tag_isolation(
        entries in proptest::collection::vec((0usize..64, 0u8..8, 0u8..32, any::<bool>()), 1..80)
    ) {
        let mut b = Bvit::new(BvitConfig { sets_log2: 6, ways: 4, ..Default::default() });
        let mut last: std::collections::HashMap<(usize, u8, u8), bool> = Default::default();
        for (index, id, depth, taken) in entries {
            // Repeat the update twice so the direction counter commits to
            // the outcome even when flipping an existing entry.
            b.update(index, id, depth, taken, true);
            b.update(index, id, depth, taken, true);
            last.insert((index & 63, id, depth), taken);
            if let Some(dir) = b.lookup(index, id, depth) {
                prop_assert_eq!(dir, taken, "fresh double-update must stick");
            }
            // Every other signature we have recorded must either miss
            // (evicted) or agree with its own most recent double-update...
            // unless a later entry in the same set evicted it; eviction
            // only ever produces misses, never wrong-tag hits.
            for (&(i, id2, d2), &t2) in &last {
                if let Some(dir) = b.lookup(i, id2, d2) {
                    if (i, id2, d2) == (index & 63, id, depth) {
                        prop_assert_eq!(dir, t2);
                    }
                }
            }
        }
    }

    /// Storage accounting is invariant over operation (tables never grow).
    #[test]
    fn storage_is_static(stream in outcome_stream()) {
        let mut p = TwoBcGskew::new(GskewConfig::level2());
        let before = p.storage_bits();
        for (pc, taken) in stream {
            let d = p.predict(pc);
            p.spec_push(taken);
            p.update(pc, &d, taken);
        }
        prop_assert_eq!(p.storage_bits(), before);
        prop_assert_eq!(before / 8, 32 * 1024, "level-2 hybrid is 32 KB");
    }

    /// `PackedCounters` must replicate `SatCounter`'s 2-bit semantics —
    /// value, saturation and the is-set threshold — for any initial
    /// value and any interleaved update/strengthen sequence, at any
    /// table position (including word-straddling indices).
    #[test]
    fn packed_counters_match_satcounter(
        init in 0u8..4,
        ops in proptest::collection::vec((0usize..96, 0u8..3), 1..300),
    ) {
        let mut packed = PackedCounters::new(96, init);
        #[allow(deprecated)]
        let mut scalar = [SatCounter::new(2, init); 96];
        for (i, op) in ops {
            match op {
                0 => { packed.update(i, true); scalar[i].update(true); }
                1 => { packed.update(i, false); scalar[i].update(false); }
                _ => { packed.strengthen(i); scalar[i].strengthen(); }
            }
            prop_assert_eq!(packed.get(i), scalar[i].value(), "value at {}", i);
            prop_assert_eq!(packed.is_set(i), scalar[i].is_set(), "is_set at {}", i);
        }
        // Full-table sweep: untouched lanes must still agree too.
        for (i, c) in scalar.iter().enumerate() {
            prop_assert_eq!(packed.get(i), c.value(), "final value at {}", i);
        }
    }
}

/// Word-boundary wraparound: counters 31 and 32 live in different `u64`
/// words; saturating either to both rails must never leak a carry or
/// borrow into its neighbour across the boundary.
#[test]
fn packed_counters_word_boundary_isolation() {
    let mut t = PackedCounters::new(64, 1);
    // Drive 31 to the ceiling and 32 to the floor, interleaved.
    for _ in 0..10 {
        t.update(31, true);
        t.update(32, false);
    }
    assert_eq!(t.get(31), 3);
    assert_eq!(t.get(32), 0);
    assert_eq!(t.get(30), 1, "same-word neighbour untouched");
    assert_eq!(t.get(33), 1, "next-word neighbour untouched");
    // Cross the rails the other way.
    for _ in 0..10 {
        t.update(31, false);
        t.update(32, true);
    }
    assert_eq!((t.get(31), t.get(32)), (0, 3));
    assert_eq!((t.get(30), t.get(33)), (1, 1));
    // Strengthen pins both to their rails without neighbour effects.
    t.strengthen(31);
    t.strengthen(32);
    assert_eq!((t.get(31), t.get(32)), (0, 3));
    assert_eq!((t.get(30), t.get(33)), (1, 1));
}

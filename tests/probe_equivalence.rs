//! Probe-seam identity harness: attaching observation probes to the
//! timing machine must not change a single figure.
//!
//! The PR 7 probe seam threads an `arvi_obs::Probe` type parameter
//! through `Machine`. Two things must hold:
//!
//! 1. **NullProbe is free** — `simulate_source` (which routes through
//!    the probed path with `NullProbe`) must produce exactly the
//!    counters it produced before the seam existed. The scheduler
//!    equivalence suite pins that against the preserved heap machine;
//!    here we pin the stronger claim directly:
//! 2. **Live probes are observers, not participants** — running with
//!    the full consumer stack (counter histograms + per-site
//!    attribution + event tracer) attached must be counter-for-counter
//!    identical to the unprobed run, across the full benchmark grid and
//!    the curated synthetic scenarios (the
//!    `tests/scheduler_equivalence.rs` axes).
//!
//! Plus consistency checks tying the probe's own telemetry back to the
//! machine's statistics.

use std::sync::Arc;

use arvi::obs::{ChromeTracer, CounterProbe, SiteProbe};
use arvi::sim::{
    intern_name, simulate_source, simulate_source_probed, Depth, MachineStats, PredictorConfig,
    SimParams,
};
use arvi::trace::TraceReplayer;
use arvi::workloads::Benchmark;
use arvi_bench::{record_trace, Spec, Workload};

fn spec() -> Spec {
    Spec {
        warmup: 2_000,
        measure: 5_000,
        seed: 42,
    }
}

/// The full consumer stack: counters + sites + tracer, composed the way
/// the experiment binaries compose them.
type FullProbe = ((CounterProbe, SiteProbe), ChromeTracer);

fn full_probe() -> FullProbe {
    (
        (CounterProbe::new(), SiteProbe::new()),
        ChromeTracer::new(0, u64::MAX),
    )
}

fn assert_identical(plain: &MachineStats, probed: &MachineStats, label: &str) {
    assert_eq!(plain.cycles, probed.cycles, "{label}: cycles");
    assert_eq!(plain.committed, probed.committed, "{label}: committed");
    assert_eq!(
        (plain.cond_branches.correct(), plain.cond_branches.total()),
        (probed.cond_branches.correct(), probed.cond_branches.total()),
        "{label}: final accuracy"
    );
    assert_eq!(
        (plain.l1_only.correct(), plain.l1_only.total()),
        (probed.l1_only.correct(), probed.l1_only.total()),
        "{label}: level-1 accuracy"
    );
    assert_eq!(
        (plain.calc_class.correct(), plain.calc_class.total()),
        (probed.calc_class.correct(), probed.calc_class.total()),
        "{label}: calculated class"
    );
    assert_eq!(
        (plain.load_class.correct(), plain.load_class.total()),
        (probed.load_class.correct(), probed.load_class.total()),
        "{label}: load class"
    );
    assert_eq!(plain.overrides, probed.overrides, "{label}: overrides");
    assert_eq!(
        plain.overrides_correcting, probed.overrides_correcting,
        "{label}: correcting overrides"
    );
    assert_eq!(plain.bvit_hits, probed.bvit_hits, "{label}: BVIT hits");
    assert_eq!(
        plain.full_mispredicts, probed.full_mispredicts,
        "{label}: full mispredicts"
    );
    assert_eq!(
        plain.override_restarts, probed.override_restarts,
        "{label}: override restarts"
    );
}

/// Runs one workload unprobed and with the full consumer stack over a
/// shared recording and compares every measurement-window counter.
/// Returns the probe for further consistency checks.
fn compare(workload: &Workload, depth: Depth, config: PredictorConfig, spec: Spec) -> FullProbe {
    let trace = Arc::new(record_trace(workload, spec));
    let name = intern_name(workload.name());
    let plain = simulate_source(
        name,
        TraceReplayer::new(Arc::clone(&trace)),
        SimParams::for_depth(depth),
        config,
        spec.warmup,
        spec.measure,
    );
    let (probed, probe) = simulate_source_probed(
        name,
        TraceReplayer::new(Arc::clone(&trace)),
        SimParams::for_depth(depth),
        config,
        spec.warmup,
        spec.measure,
        full_probe(),
    );
    assert_identical(
        &plain.window,
        &probed.window,
        &format!("{} @{depth} / {config}", workload.name()),
    );
    probe
}

/// Every suite benchmark across all pipeline depths, for the baseline
/// and ARVI configurations (the fig5/fig6 grid axes at
/// equivalence-test scale).
#[test]
fn benchmark_grid_is_probe_invariant() {
    for workload in Workload::suite() {
        for depth in Depth::all() {
            for config in [PredictorConfig::TwoLevelGskew, PredictorConfig::ArviCurrent] {
                compare(&workload, depth, config, spec());
            }
        }
    }
}

/// All curated synthetic scenarios under every configuration.
#[test]
fn curated_scenarios_are_probe_invariant() {
    for sc in arvi::synth::curated() {
        let workload = Workload::scenario(sc);
        for config in PredictorConfig::all() {
            compare(&workload, Depth::D20, config, spec());
        }
    }
}

/// The probe's own telemetry must agree with the machine it observed:
/// commit/branch counts cover the whole run, per-site totals sum to the
/// branch count, the tracer saw events, and cache totals were
/// snapshotted.
#[test]
fn probe_telemetry_is_consistent_with_the_run() {
    let s = spec();
    let workload = Workload::from(Benchmark::Li); // branchy, small footprint
    let ((counters, sites), tracer) =
        compare(&workload, Depth::D20, PredictorConfig::ArviCurrent, s);

    // The probe observes warmup + measurement (plus the commit-width
    // overshoot), never less than the window demanded.
    assert!(
        counters.committed >= s.warmup + s.measure,
        "probe saw {} commits",
        counters.committed
    );
    assert!(counters.fetched >= counters.committed);
    assert!(counters.cycles > 0);
    assert_eq!(counters.rob_occupancy.count(), counters.cycles);

    // Every resolved conditional branch lands in exactly one site (or
    // is explicitly counted as dropped if the table ever filled).
    let site_total: u64 = sites.iter().map(|site| site.total).sum();
    assert_eq!(
        site_total + sites.dropped,
        counters.branches,
        "site totals vs branches"
    );
    assert!(sites.sites > 0);
    let top = sites.top_sites(5);
    assert!(!top.is_empty());
    assert!(
        top.windows(2)
            .all(|w| w[0].mispredicts() >= w[1].mispredicts()),
        "top sites sorted by mispredicts"
    );

    // An unbounded window traces from cycle 0; the cap bounds growth.
    assert!(!tracer.is_empty());

    // End-of-run cache totals were snapshotted into the probe.
    let (l1i_hits, _) = counters.cache.l1i;
    assert!(l1i_hits > 0, "instruction fetches hit L1I");
}

/// ARVI chain telemetry flows: under an ARVI configuration the DDT
/// occupancy and chain-length histograms must fill; under the hybrid
/// baseline both stay empty (no tracker exists, so the machine never
/// fires the DDT hooks).
#[test]
fn ddt_telemetry_tracks_configuration() {
    let s = spec();
    let workload = Workload::scenario(arvi::synth::find("datadep-deep").expect("curated name"));
    let ((arvi_counters, _), _) = compare(&workload, Depth::D20, PredictorConfig::ArviCurrent, s);
    assert!(arvi_counters.ddt_occupancy.count() > 0, "DDT inserts seen");
    assert!(arvi_counters.chain_len.count() > 0, "chain reads seen");
    assert!(arvi_counters.chain_len.max() > 0, "chains have depth");

    let ((hybrid_counters, _), _) =
        compare(&workload, Depth::D20, PredictorConfig::TwoLevelGskew, s);
    assert_eq!(
        hybrid_counters.ddt_occupancy.count(),
        0,
        "hybrid L2 never inserts into a tracker"
    );
    assert_eq!(hybrid_counters.chain_len.count(), 0, "no ARVI chain reads");
}

//! Property tests for the probe merge algebra behind the grid rollup.
//!
//! `run_obs_grid` folds per-cell probes into per-`(workload, config)`
//! groups and a grid-wide total, and the resume path rebuilds probes
//! from journaled JSON before merging — so the merges must behave like
//! the telemetry was recorded in one sitting, regardless of how the
//! cells were batched or ordered:
//!
//! * `Log2Hist::merge` must equal recording the concatenated samples;
//! * `CounterProbe::merge` must be associative and commutative (the
//!   grid total is a fold over groups, each group a fold over cells);
//! * `SiteProbe::merge` must conserve per-site totals and account for
//!   every record dropped to capacity pressure.
//!
//! Probe equality is judged through the full-fidelity serialization
//! (`counters_to_json(..).render_compact()`), the same representation
//! the resume journal trusts.

use arvi::obs::{
    BranchResolution, CacheSnapshot, CounterProbe, Log2Hist, Probe, SiteProbe, SiteStats,
};
use arvi_bench::counters_to_json;
use proptest::prelude::*;

/// Sample values spread across the full bucket range: a raw 64-bit
/// value right-shifted by a random amount lands in low buckets as often
/// as high ones (plain `any::<u64>()` would almost never go below
/// 2^56).
fn any_sample() -> impl Strategy<Value = u64> {
    (any::<u64>(), 0u32..64).prop_map(|(v, s)| v >> s)
}

/// One opaque counter-probe hook invocation: `(kind, x, y, z)` decoded
/// by [`drive`]. Generating the raw tuple keeps the strategy `Debug`
/// so failing cases print their op list.
fn any_ops() -> impl Strategy<Value = Vec<(u8, u64, u64, u32)>> {
    proptest::collection::vec((any::<u8>(), any_sample(), any_sample(), 0u32..256), 0..48)
}

/// Replays an op list against a probe through the real `Probe` hooks,
/// touching every counter, histogram, the issue buckets, and the cache
/// snapshot.
fn drive(p: &mut CounterProbe, ops: &[(u8, u64, u64, u32)]) {
    for &(kind, x, y, z) in ops {
        match kind % 12 {
            0 => p.on_cycle(x, z % 512),
            1 => p.on_fetch(x, y, y ^ 0x4000, z & 1 != 0, z & 2 != 0),
            2 => p.on_ddt_insert(x, y, z % 256),
            3 => p.on_chain_read(x, y, z % 32, z % 8, z % 4),
            4 => p.on_issue(x, z % 9, 8),
            5 => p.on_mem_access(x, y, y % 500),
            6 => p.on_writeback(x, y),
            7 => p.on_commit(x, y),
            8 => p.on_branch_resolve(
                x,
                y,
                &BranchResolution {
                    actual: z & 1 != 0,
                    final_taken: z & 2 != 0,
                    l1_taken: z & 4 != 0,
                    confident: z & 8 != 0,
                    override_fired: z & 16 != 0,
                    bvit_hit: z & 32 != 0,
                    load_class: if z & 64 != 0 {
                        Some(z & 128 != 0)
                    } else {
                        None
                    },
                },
            ),
            9 => p.on_mispredict(x, y, y ^ 0x4000, z % 128),
            10 => p.on_recovery(x, y % 1_000),
            11 => p.on_cache_stats(&CacheSnapshot {
                l1i: (x % 1_000, y % 100),
                l1d: (y % 1_000, x % 100),
                l2: (x % 500, y % 50),
                itlb: (z as u64, (z / 2) as u64),
                dtlb: ((z / 3) as u64, (z / 5) as u64),
            }),
            _ => unreachable!(),
        }
    }
}

fn probe_from(ops: &[(u8, u64, u64, u32)]) -> CounterProbe {
    let mut p = CounterProbe::new();
    drive(&mut p, ops);
    p
}

fn fingerprint(p: &CounterProbe) -> String {
    counters_to_json(p).render_compact()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn hist_merge_equals_concatenated_samples(
        a in proptest::collection::vec(any_sample(), 0..64),
        b in proptest::collection::vec(any_sample(), 0..64),
    ) {
        let mut ha = Log2Hist::new();
        a.iter().for_each(|&v| ha.record(v));
        let mut hb = Log2Hist::new();
        b.iter().for_each(|&v| hb.record(v));

        let mut merged = ha.clone();
        merged.merge(&hb);

        let mut direct = Log2Hist::new();
        a.iter().chain(&b).for_each(|&v| direct.record(v));

        prop_assert_eq!(merged.count(), direct.count());
        // Both sides saturate identically: clipping at u64::MAX commutes
        // with adding further non-negative samples.
        prop_assert_eq!(merged.sum(), direct.sum());
        prop_assert_eq!(merged.max(), direct.max());
        let mb: Vec<(u64, u64)> = merged.nonzero_buckets().collect();
        let db: Vec<(u64, u64)> = direct.nonzero_buckets().collect();
        prop_assert_eq!(mb, db);
    }

    #[test]
    fn counter_merge_is_commutative(a in any_ops(), b in any_ops()) {
        let (pa, pb) = (probe_from(&a), probe_from(&b));
        let mut ab = pa.clone();
        ab.merge(&pb);
        let mut ba = pb.clone();
        ba.merge(&pa);
        prop_assert_eq!(fingerprint(&ab), fingerprint(&ba));
    }

    #[test]
    fn counter_merge_is_associative(a in any_ops(), b in any_ops(), c in any_ops()) {
        let (pa, pb, pc) = (probe_from(&a), probe_from(&b), probe_from(&c));

        // (a ∪ b) ∪ c
        let mut left = pa.clone();
        left.merge(&pb);
        left.merge(&pc);

        // a ∪ (b ∪ c)
        let mut bc = pb.clone();
        bc.merge(&pc);
        let mut right = pa.clone();
        right.merge(&bc);

        prop_assert_eq!(fingerprint(&left), fingerprint(&right));
    }

    #[test]
    fn site_merge_conserves_totals_when_capacity_suffices(
        a in proptest::collection::vec((0u64..8, 1u64..100, any::<u64>()), 0..32),
        b in proptest::collection::vec((0u64..8, 1u64..100, any::<u64>()), 0..32),
    ) {
        // At most 8 distinct PCs against a 16-slot table: nothing may
        // ever be dropped, and per-PC totals must add up exactly.
        let build = |rows: &[(u64, u64, u64)]| {
            let mut p = SiteProbe::with_capacity(16);
            for &(pc, total, bits) in rows {
                let correct = bits % (total + 1);
                p.record_stats(&SiteStats {
                    pc: 0x1000 + pc * 4,
                    total,
                    final_correct: correct,
                    l1_correct: total - correct,
                    overrides: bits % 7,
                    overrides_correcting: bits % 3,
                    confident: bits % 11,
                    confident_wrong: bits % 5,
                    bvit_hits: bits % 13,
                    load_class: bits % 2,
                });
            }
            p
        };
        let (pa, pb) = (build(&a), build(&b));
        let mut merged = pa.clone();
        merged.merge(&pb);
        prop_assert_eq!(merged.dropped, 0);

        let expect_total = |pc: u64| -> u64 {
            a.iter().chain(&b)
                .filter(|(p, ..)| 0x1000 + p * 4 == pc)
                .map(|(_, t, _)| t)
                .sum()
        };
        let mut seen = 0usize;
        for s in merged.iter() {
            prop_assert_eq!(s.total, expect_total(s.pc), "pc {:#x}", s.pc);
            prop_assert!(s.final_correct <= s.total);
            seen += 1;
        }
        prop_assert_eq!(seen, merged.sites);
        let union: std::collections::BTreeSet<u64> = a.iter().chain(&b)
            .map(|(p, ..)| p)
            .copied()
            .collect();
        prop_assert_eq!(merged.sites, union.len());
    }
}

#[test]
fn site_merge_accounts_for_every_drop() {
    // Overflow a 16-slot table from both sides. A dropped record
    // charges its execution count (`stats.total`) to `dropped`, so the
    // conservation law is over executions: stored totals + dropped ==
    // everything ever recorded, before and after the merge.
    let executions = |p: &SiteProbe| -> u64 { p.iter().map(|s| s.total).sum() };
    let build = |base: u64| {
        let mut p = SiteProbe::with_capacity(16);
        for i in 0..40u64 {
            p.record_stats(&SiteStats {
                pc: base + i * 8,
                total: 10,
                final_correct: 5,
                ..Default::default()
            });
        }
        p
    };
    let pa = build(0x1000);
    let pb = build(0x9000); // disjoint PCs: merge faces fresh inserts
    assert_eq!(executions(&pa) + pa.dropped, 400);
    assert_eq!(executions(&pb) + pb.dropped, 400);
    assert!(pa.dropped > 0, "40 distinct PCs must overflow 16 slots");

    let mut merged = pa.clone();
    merged.merge(&pb);
    assert_eq!(
        executions(&merged) + merged.dropped,
        800,
        "every execution is either stored or accounted as dropped"
    );
    // The merge carries both inputs' drop counts and adds its own for
    // pb's sites that no longer fit.
    assert!(merged.dropped > pa.dropped + pb.dropped);
}

//! Sampled-simulation contract tests (see `arvi::sampling` and
//! `arvi_bench::sampling`):
//!
//! 1. **Full-coverage exactness** — a `k = 1` systematic plan tiles the
//!    region, so the instruction population it measures is *exactly* the
//!    full run's: committed count equals the region length and the
//!    trace-derived counters (conditional-branch totals) match a single
//!    detail window spanning the whole region, for any detail length and
//!    warm-up (property test). Cycle counts are boundary-dependent (each
//!    unit refills its own pipeline) and are deliberately not part of
//!    the exactness claim.
//! 2. **Merge algebra** — per-unit counter blocks merge with plain
//!    integer sums: associative, commutative, and `aggregate`'s totals
//!    equal a fold in any order, so thread interleaving and resume
//!    replay cannot change a sampled result.
//! 3. **End-to-end determinism** — a sampled sweep's complete estimate
//!    fingerprint (counters plus the bit patterns of every mean, stderr
//!    and CI) is byte-identical across `--threads 1/4/8` and across a
//!    kill + `--resume` cycle through the unit journal.

use std::sync::{Arc, OnceLock};

use arvi::isa::Emulator;
use arvi::sampling::{aggregate, merge_stats, run_unit, run_units, SamplePlan, SampleUnit};
use arvi::sim::{Depth, MachineStats, PredictorConfig, SimParams};
use arvi::trace::Trace;
use arvi::workloads::Benchmark;
use arvi_bench::{
    grid, run_sweep_sampled, sample_ci_table, FaultPlan, Resilience, SampledSweep, Spec,
    SweepPoint, TraceSet, Workload,
};
use proptest::prelude::*;

/// Region length of the shared property-test trace; the recording
/// carries extra slack so a detail window ending at the region boundary
/// can still fetch ahead.
const REGION: u64 = 3_000;

fn shared_trace() -> &'static Arc<Trace> {
    static TRACE: OnceLock<Arc<Trace>> = OnceLock::new();
    TRACE.get_or_init(|| {
        let emu = Emulator::new(Benchmark::Compress.program(7));
        Arc::new(Trace::record(
            emu,
            REGION + 2_000,
            "compress-sampling-it",
            7,
        ))
    })
}

/// The full-run reference: one detail window spanning the whole region,
/// started cold at position 0 — exactly what a plan degenerates to when
/// its detail length covers the region.
fn full_region_counts(config: PredictorConfig) -> MachineStats {
    let unit = SampleUnit {
        index: 0,
        warmup_start: 0,
        detail_start: 0,
        detail_len: REGION,
    };
    run_unit(
        shared_trace(),
        &SimParams::for_depth(Depth::D20),
        config,
        &unit,
    )
    .expect("full-region unit runs")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]
    #[test]
    fn full_coverage_plan_reproduces_full_run_counts(
        detail in 64u64..1_500,
        warmup in 0u64..3_000,
    ) {
        let config = PredictorConfig::TwoLevelGskew;
        let full = full_region_counts(config);
        prop_assert_eq!(full.committed, REGION);

        let plan = SamplePlan::systematic(1, warmup, detail);
        let units = plan.units(0, REGION, 0);
        // The tiling invariant: contiguous detail windows, no gaps.
        let mut next = 0;
        for u in &units {
            prop_assert_eq!(u.detail_start, next);
            next = u.detail_start + u.detail_len;
        }
        prop_assert_eq!(next, REGION);

        let params = SimParams::for_depth(Depth::D20);
        let results = run_units(shared_trace(), &params, config, &units, 2).unwrap();
        let report = aggregate(&results, REGION);

        // 100% coverage measures the full run's instruction population
        // exactly — commit-for-commit, branch-for-branch.
        prop_assert_eq!(report.totals.committed, REGION);
        prop_assert_eq!(report.sampled_insts, REGION);
        prop_assert!((report.coverage() - 1.0).abs() < 1e-12);
        prop_assert_eq!(
            report.totals.cond_branches.total(),
            full.cond_branches.total()
        );
        prop_assert_eq!(report.totals.l1_only.total(), full.l1_only.total());
        // The weighted means stay exact ratios of the summed counters.
        prop_assert!((report.ipc.mean - report.totals.ipc()).abs() < 1e-12);
        prop_assert!(
            (report.accuracy.mean - report.totals.cond_branches.rate()).abs() < 1e-12
        );
    }
}

#[test]
fn merge_order_cannot_change_a_sampled_result() {
    let params = SimParams::for_depth(Depth::D20);
    let plan = SamplePlan::systematic(2, 300, 400);
    let units = plan.units(0, REGION, 0);
    let r = run_units(
        shared_trace(),
        &params,
        PredictorConfig::ArviCurrent,
        &units,
        1,
    )
    .unwrap();
    assert!(r.len() >= 4, "need several units, got {}", r.len());

    let eq = |a: &MachineStats, b: &MachineStats| {
        assert_eq!(a.committed, b.committed);
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(a.cond_branches, b.cond_branches);
        assert_eq!(a.overrides, b.overrides);
        assert_eq!(a.full_mispredicts, b.full_mispredicts);
        assert_eq!(a.bvit_hits, b.bvit_hits);
    };

    // Associativity and commutativity on real unit blocks.
    let ab_c = merge_stats(&merge_stats(&r[0], &r[1]), &r[2]);
    let a_bc = merge_stats(&r[0], &merge_stats(&r[1], &r[2]));
    let c_ba = merge_stats(&r[2], &merge_stats(&r[1], &r[0]));
    eq(&ab_c, &a_bc);
    eq(&ab_c, &c_ba);

    // aggregate's totals equal a fold in forward, reverse, or
    // interleaved order — the resume path merges in whatever order the
    // journal yields.
    let totals = aggregate(&r, REGION).totals;
    let forward = r
        .iter()
        .fold(MachineStats::default(), |acc, s| merge_stats(&acc, s));
    let reverse = r
        .iter()
        .rev()
        .fold(MachineStats::default(), |acc, s| merge_stats(&acc, s));
    let mut shuffled: Vec<&MachineStats> = r.iter().skip(1).step_by(2).collect();
    shuffled.extend(r.iter().step_by(2));
    let interleaved = shuffled
        .into_iter()
        .fold(MachineStats::default(), |acc, s| merge_stats(&acc, s));
    eq(&totals, &forward);
    eq(&totals, &reverse);
    eq(&totals, &interleaved);
}

/// Everything a sampled sweep reports, minus wall-clock: per-cell
/// counters and the exact bit patterns of every estimate. Two sweeps
/// with equal fingerprints render identical tables and JSON.
fn sweep_fingerprint(points: &[SweepPoint], sweep: &SampledSweep) -> String {
    let mut out = String::new();
    for (point, (outcome, report)) in points.iter().zip(sweep.outcomes.iter().zip(&sweep.reports)) {
        let s = outcome
            .success()
            .unwrap_or_else(|| panic!("cell {point} did not complete: {outcome:?}"));
        let w = &s.result.window;
        out.push_str(&format!(
            "{point} committed={} cycles={} branches={:?} mispredicts={} units={}\n",
            w.committed, w.cycles, w.cond_branches, w.full_mispredicts, s.sampled_units
        ));
        let r = report.as_ref().expect("sampled cells carry a report");
        out.push_str(&format!(
            "  ipc mean={:016x} stderr={:016x} ci={:016x} acc mean={:016x} stderr={:016x} \
             units={} coverage={:016x}\n",
            r.ipc.mean.to_bits(),
            r.ipc.stderr.to_bits(),
            r.ipc.ci_half_width().to_bits(),
            r.accuracy.mean.to_bits(),
            r.accuracy.stderr.to_bits(),
            r.units(),
            r.coverage().to_bits(),
        ));
    }
    out.push_str(&sample_ci_table(points, sweep).to_text());
    out
}

#[test]
fn sampled_sweep_fingerprint_is_identical_across_threads_and_resume() {
    let spec = Spec {
        warmup: 2_000,
        measure: 8_000,
        seed: 3,
    };
    let workloads = [
        Workload::from(Benchmark::Compress),
        Workload::from(Benchmark::Li),
    ];
    let points = grid(
        &workloads,
        &[Depth::D20],
        &[PredictorConfig::TwoLevelGskew, PredictorConfig::ArviCurrent],
    );
    let traces = TraceSet::record(&workloads, spec, 2, None);
    let plan = SamplePlan::systematic(2, 500, 1_000);

    // Thread invariance: the full fingerprint, not just one counter.
    let reference = {
        let sweep = run_sweep_sampled(&points, spec, &plan, 1, false, &traces, None);
        sweep_fingerprint(&points, &sweep)
    };
    for threads in [4, 8] {
        let sweep = run_sweep_sampled(&points, spec, &plan, threads, false, &traces, None);
        assert_eq!(
            sweep_fingerprint(&points, &sweep),
            reference,
            "1 vs {threads} threads"
        );
    }

    // Kill + resume: the first run dies mid-cell after 3 units; the
    // resumed run restores the journaled units, finishes the rest, and
    // fingerprints identically to an uninterrupted run.
    let dir = std::env::temp_dir().join(format!("arvi-sampling-it-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    let journal = dir.join("sweep.journal");
    let res = Resilience::new()
        .with_journal(&journal)
        .with_plan(FaultPlan::parse("kill-after 3").unwrap());
    let killed = run_sweep_sampled(&points, spec, &plan, 1, false, &traces, Some(&res));
    assert!(
        killed.outcomes.iter().any(|o| o.success().is_none()),
        "the kill must leave unfinished cells behind"
    );

    let res = Resilience::new().with_journal(&journal).resuming();
    let resumed = run_sweep_sampled(&points, spec, &plan, 4, false, &traces, Some(&res));
    assert_eq!(
        sweep_fingerprint(&points, &resumed),
        reference,
        "kill + resume must reproduce the uninterrupted sweep bit for bit"
    );
    std::fs::remove_dir_all(&dir).ok();
}

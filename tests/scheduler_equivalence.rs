//! Cycle-identity harness for the calendar-queue timing machine.
//!
//! The PR 4 rewrite replaced the machine's two `BinaryHeap` scheduler
//! queues with a fixed-horizon timing wheel (plus a structure-of-arrays
//! ROB, sorted-vector memory ordering and a commit-order decision FIFO).
//! None of that may change a single figure: this harness pins the new
//! machine against the preserved heap machine
//! (`arvi_bench::baseline::HeapMachine`) counter-for-counter across
//!
//! 1. the full benchmark grid (every suite benchmark x every predictor
//!    configuration x every pipeline depth), and
//! 2. all curated synthetic scenarios (every configuration, 20-stage),
//!
//! plus a property test comparing the wheel's per-cycle drain sets
//! against a `BinaryHeap` reference over random bounded-latency
//! schedules (including the occupancy-bitmap cycle skip).

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::Arc;

use arvi::sim::{
    simulate_source, Depth, EventWheel, MachineStats, PredictorConfig, SimParams, SimResult,
};
use arvi::trace::TraceReplayer;
use arvi_bench::{baseline, record_trace, Spec, Workload};
use proptest::prelude::*;

fn spec() -> Spec {
    Spec {
        warmup: 2_000,
        measure: 5_000,
        seed: 42,
    }
}

fn assert_identical(wheel: &MachineStats, heap: &MachineStats, label: &str) {
    assert_eq!(wheel.cycles, heap.cycles, "{label}: cycles");
    assert_eq!(wheel.committed, heap.committed, "{label}: committed");
    assert_eq!(
        (wheel.cond_branches.correct(), wheel.cond_branches.total()),
        (heap.cond_branches.correct(), heap.cond_branches.total()),
        "{label}: final accuracy"
    );
    assert_eq!(
        (wheel.l1_only.correct(), wheel.l1_only.total()),
        (heap.l1_only.correct(), heap.l1_only.total()),
        "{label}: level-1 accuracy"
    );
    assert_eq!(
        (wheel.calc_class.correct(), wheel.calc_class.total()),
        (heap.calc_class.correct(), heap.calc_class.total()),
        "{label}: calculated class"
    );
    assert_eq!(
        (wheel.load_class.correct(), wheel.load_class.total()),
        (heap.load_class.correct(), heap.load_class.total()),
        "{label}: load class"
    );
    assert_eq!(wheel.overrides, heap.overrides, "{label}: overrides");
    assert_eq!(
        wheel.overrides_correcting, heap.overrides_correcting,
        "{label}: correcting overrides"
    );
    assert_eq!(wheel.bvit_hits, heap.bvit_hits, "{label}: BVIT hits");
    assert_eq!(
        wheel.full_mispredicts, heap.full_mispredicts,
        "{label}: full mispredicts"
    );
    assert_eq!(
        wheel.override_restarts, heap.override_restarts,
        "{label}: override restarts"
    );
}

/// Runs one workload through both machines over a shared recording and
/// compares every counter of the measurement window.
fn compare(workload: &Workload, depth: Depth, config: PredictorConfig, spec: Spec) {
    let trace = Arc::new(record_trace(workload, spec));
    let wheel: SimResult = simulate_source(
        arvi::sim::intern_name(workload.name()),
        TraceReplayer::new(Arc::clone(&trace)),
        SimParams::for_depth(depth),
        config,
        spec.warmup,
        spec.measure,
    );
    let heap = baseline::simulate_source_heap(
        workload.name(),
        TraceReplayer::new(Arc::clone(&trace)),
        SimParams::for_depth(depth),
        config,
        spec.warmup,
        spec.measure,
    );
    assert_identical(
        &wheel.window,
        &heap.window,
        &format!("{} @{depth} / {config}", workload.name()),
    );
}

/// Every suite benchmark x configuration x depth (the fig5/fig6 grid
/// axes at equivalence-test scale).
#[test]
fn benchmark_grid_is_cycle_identical() {
    for workload in Workload::suite() {
        for depth in Depth::all() {
            for config in PredictorConfig::all() {
                compare(&workload, depth, config, spec());
            }
        }
    }
}

/// All curated synthetic scenarios under every configuration.
#[test]
fn curated_scenarios_are_cycle_identical() {
    for sc in arvi::synth::curated() {
        let workload = Workload::scenario(sc);
        for config in PredictorConfig::all() {
            compare(&workload, Depth::D20, config, spec());
        }
    }
}

/// The deeper pipelines exercise the largest wheel delays (D60 worst
/// case: a TLB miss plus misses at every level) on the scenario mix too.
#[test]
fn deep_pipeline_scenarios_are_cycle_identical() {
    for name in ["datadep-deep", "datadep-chase", "bias-always"] {
        let workload = Workload::scenario(arvi::synth::find(name).expect("curated name"));
        for depth in [Depth::D40, Depth::D60] {
            compare(&workload, depth, PredictorConfig::ArviCurrent, spec());
        }
    }
}

/// Reference model for the wheel: a plain `(time, payload)` min-heap.
#[derive(Default)]
struct HeapRef {
    q: BinaryHeap<Reverse<(u64, u64)>>,
}

impl HeapRef {
    fn drain_due(&mut self, now: u64) -> Vec<u64> {
        let mut out = Vec::new();
        while let Some(&Reverse((t, p))) = self.q.peek() {
            if t > now {
                break;
            }
            self.q.pop();
            out.push(p);
        }
        out.sort_unstable();
        out
    }

    fn next_after(&self, now: u64) -> Option<u64> {
        // All entries are in the future when this is called (mirrors the
        // machine's quiet-cycle invariant).
        self.q.peek().map(|&Reverse((t, _))| t.max(now + 1))
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Random bounded-latency schedules: at every cycle the wheel must
    /// hand back exactly the heap's due set, and when idle both must
    /// agree on the next occupied cycle (the cycle-skip target).
    #[test]
    fn wheel_matches_heap_order(
        max_delay in 1u64..400,
        ops in proptest::collection::vec((0u64..400, 0u64..1_000_000), 1..200),
    ) {
        let mut wheel = EventWheel::with_max_delay(400);
        let mut heap = HeapRef::default();
        let mut now = 0u64;
        let mut scratch = Vec::new();
        let mut pending = ops.len();
        let mut ops = ops.into_iter();

        while pending > 0 || !wheel.is_empty() {
            // Schedule a burst of future work (delays bounded by
            // `max_delay`, like the machine's Table-2 latencies).
            for (delay, payload) in ops.by_ref().take(3) {
                let at = now + 1 + delay % max_delay;
                wheel.schedule(now, at, payload);
                heap.q.push(Reverse((at, payload)));
                pending -= 1;
            }
            // Drain this cycle from both.
            scratch.clear();
            wheel.drain_due_into(now, &mut scratch);
            scratch.sort_unstable();
            let expect = heap.drain_due(now);
            prop_assert_eq!(&scratch, &expect, "due set at cycle {}", now);
            prop_assert_eq!(wheel.len(), heap.q.len());
            // Idle: jump exactly where the heap would.
            if pending == 0 {
                match (wheel.next_after(now), heap.next_after(now)) {
                    (Some(w), Some(h)) => { prop_assert_eq!(w, h); now = w; }
                    (None, None) => break,
                    (w, h) => prop_assert!(false, "skip mismatch: wheel {:?} heap {:?}", w, h),
                }
            } else {
                now += 1;
            }
        }
        prop_assert_eq!(wheel.len(), 0);
    }
}

//! Contract tests for the `arvi-synth` scenario subsystem:
//!
//! 1. **Separation sanity bounds** — the paper-style qualitative claim
//!    the scenario grid exists to demonstrate: on data-dependent-branch
//!    scenarios the DDT/ARVI path clearly beats the two-level baseline,
//!    while on fixed-bias scenarios every configuration converges.
//! 2. **Determinism** — the same scenario spec + seed yields a
//!    bit-identical `.arvitrace` file across repeated runs and across
//!    recorder thread counts, and (property test) the recorded stream
//!    is a pure function of `(spec, seed)` over the whole knob space.

use arvi::sim::{Depth, PredictorConfig};
use arvi::synth::{record_trace, ScenarioSpec};
use arvi_bench::{grid, run_sweep, trace_file_name, Spec, TraceSet, Workload};
use proptest::prelude::*;

#[test]
fn datadep_beats_baseline_and_bias_converges() {
    let spec = Spec {
        warmup: 15_000,
        measure: 60_000,
        seed: 42,
    };
    let workloads = vec![
        Workload::scenario("dd branch=datadep:64 chain=4 gap=16".parse().unwrap()),
        Workload::scenario("steady branch=bias:100".parse().unwrap()),
    ];
    let points = grid(&workloads, &[Depth::D20], &PredictorConfig::all());
    let results = run_sweep(&points, spec, 2, false);
    let configs = PredictorConfig::all().len();

    // Data-dependent branches: seeded-random replay of a small value
    // population — ambiguous to history, exact for a value index.
    let dd = &results[..configs];
    let baseline = dd[0].accuracy();
    let arvi = dd[1].accuracy();
    assert!(
        baseline < 0.65,
        "two-level baseline should hover near chance on datadep (got {baseline:.4})"
    );
    assert!(
        arvi > baseline + 0.10,
        "ARVI current value must clearly beat the baseline on datadep \
         (arvi {arvi:.4} vs baseline {baseline:.4})"
    );

    // Fixed bias: nothing to extract — every configuration converges.
    let bias = &results[configs..];
    for r in bias {
        assert!(
            r.accuracy() > 0.99,
            "{} should nail an always-taken branch (got {:.4})",
            r.config,
            r.accuracy()
        );
    }
    let accs: Vec<f64> = bias.iter().map(|r| r.accuracy()).collect();
    let spread =
        accs.iter().copied().fold(0.0, f64::max) - accs.iter().copied().fold(1.0, f64::min);
    assert!(
        spread < 0.01,
        "configs must converge on fixed bias (spread {spread:.4})"
    );
}

#[test]
fn scenario_traces_are_bit_identical_across_runs_and_thread_counts() {
    let spec = Spec {
        warmup: 2_000,
        measure: 8_000,
        seed: 7,
    };
    let workloads: Vec<Workload> = [
        "ta branch=datadep:16 chain=3 mem=chase:128",
        "tb branch=history:2 chain=5 fanout=2 mem=stride:8",
        "tc branch=periodic:6 dead=3",
    ]
    .iter()
    .map(|line| Workload::scenario(line.parse().unwrap()))
    .collect();

    let base = std::env::temp_dir().join(format!("arvi-synth-det-{}", std::process::id()));
    std::fs::remove_dir_all(&base).ok();
    let dirs = [base.join("t1"), base.join("t4"), base.join("t1-again")];
    TraceSet::record(&workloads, spec, 1, Some(&dirs[0]));
    TraceSet::record(&workloads, spec, 4, Some(&dirs[1]));
    TraceSet::record(&workloads, spec, 1, Some(&dirs[2]));

    for w in &workloads {
        let file = trace_file_name(w, spec);
        let reference = std::fs::read(dirs[0].join(&file)).expect("trace persisted");
        assert!(!reference.is_empty());
        for dir in &dirs[1..] {
            let other = std::fs::read(dir.join(&file)).expect("trace persisted");
            assert_eq!(
                reference, other,
                "{file}: bytes differ across runs/thread counts"
            );
        }
    }
    std::fs::remove_dir_all(&base).ok();
}

#[test]
fn same_name_different_knobs_get_distinct_trace_files() {
    let spec = Spec {
        warmup: 1_000,
        measure: 2_000,
        seed: 1,
    };
    let a = Workload::scenario("same branch=datadep:8 chain=2".parse().unwrap());
    let b = Workload::scenario("same branch=datadep:8 chain=3".parse().unwrap());
    assert_ne!(
        trace_file_name(&a, spec),
        trace_file_name(&b, spec),
        "scenario trace files must be keyed by the spec fingerprint"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The recorded stream is a pure function of `(spec, seed)` across
    /// the whole knob space — and seeds actually matter.
    #[test]
    fn recorded_stream_is_a_pure_function_of_spec_and_seed(
        class in 0..4usize,
        arg in 0..4096u32,
        chain in 0..9u32,
        fanout in 1..5u32,
        dead in 0..5u32,
        gap in 0..17u32,
        mem in 0..3usize,
        seed in 0..1_000u64,
    ) {
        let branch = match class {
            0 => format!("bias:{}", arg % 101),
            1 => format!("periodic:{}", 2 + arg % 31),
            2 => format!("history:{}", 1 + arg % 8),
            _ => format!("datadep:{}", 2 + arg % 100),
        };
        let mem = match mem {
            0 => "stream".to_string(),
            1 => format!("stride:{}", 1 + arg % 64),
            _ => format!("chase:{}", 2 + arg % 200),
        };
        let line = format!(
            "prop branch={branch} chain={chain} fanout={fanout} dead={dead} gap={gap} mem={mem}"
        );
        let spec: ScenarioSpec = line.parse().expect("generated specs are valid");
        let a = record_trace(&spec, seed, 4_000).to_bytes();
        let b = record_trace(&spec, seed, 4_000).to_bytes();
        prop_assert_eq!(&a, &b, "same (spec, seed) must record identically");
        let c = record_trace(&spec, seed + 1, 4_000).to_bytes();
        prop_assert_ne!(&a, &c, "different seeds must record differently");
    }
}

//! The trace subsystem's contract tests:
//!
//! 1. The codec round-trips **arbitrary** `DynInst` streams, not just
//!    emulator-shaped ones (property test over random records and chunk
//!    sizes, through both the in-memory trace and the file container).
//! 2. Corruption anywhere in a persisted file is rejected at load.
//! 3. Replaying a recording through the timing simulator is
//!    **bit-identical** to live emulation for every benchmark x depth x
//!    configuration cell of the paper grid.

use arvi::isa::{BranchInfo, DynInst, Emulator, InstKind, Reg};
use arvi::sim::MachineStats;
use arvi::trace::{Trace, TraceError, TraceReader, TraceWriter};
use arvi::workloads::Benchmark;
use arvi_bench::{full_grid, run_sweep, run_sweep_emulated, Spec};
use proptest::prelude::*;

fn reg() -> impl Strategy<Value = Reg> {
    (0..32u8).prop_map(Reg::new)
}

fn kind() -> impl Strategy<Value = InstKind> {
    (0..9usize).prop_map(|i| {
        [
            InstKind::IntAlu,
            InstKind::IntMul,
            InstKind::IntDiv,
            InstKind::Load,
            InstKind::Store,
            InstKind::Branch,
            InstKind::Jump,
            InstKind::JumpReg,
            InstKind::Halt,
        ][i]
    })
}

fn branch_info() -> impl Strategy<Value = BranchInfo> {
    (any::<bool>(), any::<u32>(), any::<u32>(), any::<bool>()).prop_map(
        |(taken, next_pc, fallthrough, conditional)| BranchInfo {
            taken,
            next_pc,
            fallthrough,
            conditional,
        },
    )
}

/// Entirely unconstrained records: extreme sequence numbers, random PCs,
/// 64-bit results and addresses, branches whose fields obey none of the
/// emulator's invariants.
fn dyn_inst() -> impl Strategy<Value = DynInst> {
    (
        (any::<u64>(), any::<u32>(), kind()),
        (
            proptest::option::of(reg()),
            proptest::option::of(reg()),
            proptest::option::of(reg()),
        ),
        (any::<u64>(), any::<u64>(), 0..2_000_000u32),
        proptest::option::of(branch_info()),
    )
        .prop_map(
            |((seq, pc, kind), (src0, src1, dest), (result, mem_addr, hoist), branch)| DynInst {
                seq,
                pc,
                kind,
                srcs: [src0, src1],
                dest,
                result,
                mem_addr,
                branch,
                hoist,
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// `decode(encode(stream)) == stream` for any record content, any
    /// stream length and any chunk capacity — the format does not rely
    /// on emulator invariants (dense seq, sequential PCs, aligned
    /// addresses), it only compresses better when they hold.
    #[test]
    fn codec_round_trips_arbitrary_streams(
        insts in proptest::collection::vec(dyn_inst(), 0..200),
        chunk_insts in 1..48usize,
    ) {
        let mut w = TraceWriter::new("prop", 0).with_chunk_insts(chunk_insts);
        for d in &insts {
            w.push(*d);
        }
        let trace = w.finish();
        trace.verify().expect("fresh recording verifies");
        let decoded: Vec<DynInst> = TraceReader::new(&trace).collect();
        prop_assert_eq!(&insts, &decoded, "in-memory round trip");

        // And through the on-disk container.
        let reloaded = Trace::from_bytes(&trace.to_bytes()).expect("container round trip");
        let decoded: Vec<DynInst> = TraceReader::new(&reloaded).collect();
        prop_assert_eq!(&insts, &decoded, "container round trip");
    }
}

#[test]
fn corrupted_file_is_rejected() {
    let emu = Emulator::new(Benchmark::Gcc.program(8));
    let trace = Trace::record(emu, 2_000, "gcc", 8);
    let dir = std::env::temp_dir().join(format!("arvi-replay-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("gcc.arvitrace");
    trace.write_to(&path).unwrap();

    let good = std::fs::read(&path).unwrap();
    // A flipped bit anywhere before the trailing magic — payload, but
    // also the header and the footer index (whose `first_seq` fields
    // would otherwise decode "cleanly" into wrong sequence numbers) —
    // must surface as a checksum mismatch, not as garbage instructions.
    for at in [12, good.len() / 2, good.len() - 16] {
        let mut bad = good.clone();
        bad[at] ^= 0x04;
        std::fs::write(&path, &bad).unwrap();
        match Trace::read_from(&path) {
            // `read_from` wraps every failure with the file path; the
            // classification lives at the root cause.
            Err(e) => {
                assert!(
                    matches!(e.root(), TraceError::FileChecksumMismatch),
                    "flip at {at}: expected checksum mismatch, got {e:?}"
                );
                assert!(
                    e.to_string().contains("gcc.arvitrace"),
                    "error names the file: {e}"
                );
            }
            Ok(_) => panic!("flip at {at}: corrupt file loaded"),
        }
    }

    // Truncation is rejected too.
    std::fs::write(&path, &good[..good.len() - 10]).unwrap();
    assert!(Trace::read_from(&path).is_err());

    std::fs::remove_dir_all(&dir).ok();
}

fn assert_identical(live: &MachineStats, replay: &MachineStats, label: &str) {
    assert_eq!(live.committed, replay.committed, "{label}: committed");
    assert_eq!(live.cycles, replay.cycles, "{label}: cycles");
    for (a, b, what) in [
        (&live.cond_branches, &replay.cond_branches, "cond_branches"),
        (&live.l1_only, &replay.l1_only, "l1_only"),
        (&live.calc_class, &replay.calc_class, "calc_class"),
        (&live.load_class, &replay.load_class, "load_class"),
    ] {
        assert_eq!(a.total(), b.total(), "{label}: {what} total");
        assert_eq!(a.correct(), b.correct(), "{label}: {what} correct");
    }
    assert_eq!(live.overrides, replay.overrides, "{label}: overrides");
    assert_eq!(
        live.overrides_correcting, replay.overrides_correcting,
        "{label}: overrides_correcting"
    );
    assert_eq!(live.bvit_hits, replay.bvit_hits, "{label}: bvit_hits");
    assert_eq!(
        live.full_mispredicts, replay.full_mispredicts,
        "{label}: full_mispredicts"
    );
    assert_eq!(
        live.override_restarts, replay.override_restarts,
        "{label}: override_restarts"
    );
}

/// The tentpole guarantee: the shared-trace sweep reproduces the live
/// sweep counter-for-counter on every cell of the full paper grid
/// (8 benchmarks x 3 depths x 4 configurations).
#[test]
fn replay_is_bit_identical_across_the_full_grid() {
    let spec = Spec {
        warmup: 2_000,
        measure: 5_000,
        seed: 42,
    };
    let points = full_grid();
    let live = run_sweep_emulated(&points, spec, 2, false);
    let traced = run_sweep(&points, spec, 2, false);
    assert_eq!(live.len(), traced.len());
    for ((p, l), t) in points.iter().zip(&live).zip(&traced) {
        assert_eq!(l.name, t.name);
        assert_identical(&l.window, &t.window, &p.to_string());
    }
}

//! Suite-level workload validation: every benchmark produces a realistic,
//! deterministic, steady-state instruction stream.

use arvi::isa::{Emulator, InstKind};
use arvi::workloads::Benchmark;
use proptest::prelude::*;
use std::collections::HashSet;

#[test]
fn suite_has_eight_benchmarks_in_paper_order() {
    let names: Vec<&str> = Benchmark::all().iter().map(|b| b.name()).collect();
    assert_eq!(
        names,
        ["gcc", "compress", "go", "ijpeg", "li", "m88ksim", "perl", "vortex"]
    );
}

#[test]
fn all_benchmarks_run_one_million_instructions() {
    for bench in Benchmark::all() {
        let mut emu = Emulator::new(bench.program(42));
        let mut n = 0u64;
        while n < 1_000_000 {
            assert!(
                emu.step().is_some(),
                "{bench} halted after {n} instructions"
            );
            n += 1;
        }
    }
}

#[test]
fn instruction_mixes_are_integer_code_like() {
    for bench in Benchmark::all() {
        let t: Vec<_> = Emulator::new(bench.program(42)).take(60_000).collect();
        let n = t.len() as f64;
        let branches = t.iter().filter(|d| d.is_branch()).count() as f64 / n;
        let loads = t.iter().filter(|d| d.is_load()).count() as f64 / n;
        let stores = t.iter().filter(|d| d.is_store()).count() as f64 / n;
        assert!(
            (0.05..0.40).contains(&branches),
            "{bench}: branch fraction {branches:.3}"
        );
        assert!(
            (0.02..0.45).contains(&loads),
            "{bench}: load fraction {loads:.3}"
        );
        assert!(stores > 0.001, "{bench}: store fraction {stores:.4}");
        assert!(
            branches + loads + stores < 0.85,
            "{bench}: too little ALU work"
        );
    }
}

#[test]
fn branch_populations_have_both_biased_and_volatile_sites() {
    for bench in Benchmark::all() {
        let t: Vec<_> = Emulator::new(bench.program(42)).take(150_000).collect();
        let mut per_pc: std::collections::HashMap<u32, (u64, u64)> = Default::default();
        for d in &t {
            if d.is_branch() {
                let e = per_pc.entry(d.pc).or_default();
                if d.branch.expect("is_branch").taken {
                    e.0 += 1;
                } else {
                    e.1 += 1;
                }
            }
        }
        let hot: Vec<f64> = per_pc
            .values()
            .filter(|(t, n)| t + n > 200)
            .map(|(t, n)| *t as f64 / (t + n) as f64)
            .collect();
        assert!(hot.len() >= 4, "{bench}: too few hot branch sites");
        assert!(
            hot.iter().any(|r| !(0.3..=0.7).contains(r)),
            "{bench}: no leaning branches"
        );
    }
}

#[test]
fn memory_footprints_are_bounded() {
    // Steady-state workloads must not leak memory pages (cyclic working
    // sets).
    for bench in Benchmark::all() {
        let mut emu = Emulator::new(bench.program(42));
        for _ in 0..200_000 {
            emu.step();
        }
        let mid = emu.memory().pages_allocated();
        for _ in 0..200_000 {
            emu.step();
        }
        let end = emu.memory().pages_allocated();
        assert!(
            end <= mid + 2,
            "{bench}: pages grew {mid} -> {end} in steady state"
        );
    }
}

#[test]
fn distinct_branch_sites_scale_with_benchmark_character() {
    let count_sites = |bench: Benchmark| -> usize {
        let sites: HashSet<u32> = Emulator::new(bench.program(42))
            .take(100_000)
            .filter(|d| d.is_branch())
            .map(|d| d.pc)
            .collect();
        sites.len()
    };
    // gcc models a wide parser: more static branch sites than the
    // kernel-dominated compress.
    assert!(count_sites(Benchmark::Gcc) > count_sites(Benchmark::Compress));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Any seed yields a deterministic, non-halting program for every
    /// benchmark (the generator never builds broken control flow).
    #[test]
    fn all_seeds_build_runnable_programs(seed in 0u64..1000) {
        for bench in Benchmark::all() {
            let a: Vec<_> = Emulator::new(bench.program(seed)).take(3_000).collect();
            let b: Vec<_> = Emulator::new(bench.program(seed)).take(3_000).collect();
            prop_assert_eq!(a.len(), 3_000, "{} halted (seed {})", bench, seed);
            prop_assert_eq!(a, b, "{} nondeterministic (seed {})", bench, seed);
        }
    }

    /// Traces never contain control transfers that leave the program or
    /// malformed records (jump targets resolve, zero register never a
    /// dest).
    #[test]
    fn trace_records_are_well_formed(seed in 0u64..500) {
        let bench = Benchmark::all()[(seed % 8) as usize];
        let program = bench.program(seed);
        let len = program.len() as u32;
        for d in Emulator::new(program).take(5_000) {
            prop_assert!(d.pc < len);
            if let Some(info) = d.branch {
                prop_assert!(info.next_pc < len, "control left the program");
            }
            if matches!(d.kind, InstKind::Load | InstKind::Store) {
                prop_assert!(d.mem_addr >= 0x1_0000, "data below the heap base");
            }
            if let Some(dest) = d.dest {
                prop_assert!(!dest.is_zero());
            }
        }
    }
}
